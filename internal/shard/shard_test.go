package shard

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adafl/internal/checkpoint"
	"adafl/internal/compress"
	"adafl/internal/obs"
	"adafl/internal/stats"
)

// mkSparse builds a valid sparse update message.
func mkSparse(dim int, idx []int32, vals []float64) *compress.Sparse {
	return &compress.Sparse{Dim: dim, Indices: idx, Values: vals}
}

// randomUpdates generates n valid sparse updates over dim coordinates.
func randomUpdates(n, dim, nnz int, seed uint64) []Update {
	rng := stats.NewRNG(seed)
	ups := make([]Update, n)
	for c := range ups {
		idx := make([]int32, nnz)
		vals := make([]float64, nnz)
		seen := map[int32]bool{}
		for i := range idx {
			v := int32(rng.Intn(dim))
			for seen[v] {
				v = int32(rng.Intn(dim))
			}
			seen[v] = true
			idx[i] = v
			vals[i] = rng.Norm()
		}
		ups[c] = Update{Client: c, Weight: 0.5 + rng.Float64(), Delta: mkSparse(dim, idx, vals)}
	}
	return ups
}

// referenceFold is the buffered two-phase aggregation the tree must
// reproduce: fold in slice order, one weight sum.
func referenceFold(dim int, ups []Update, unweighted bool) *Partial {
	p := NewPartial(dim)
	for _, u := range ups {
		p.Fold(u, unweighted)
	}
	return p
}

func runTree(t *testing.T, cfg Config, ups []Update) (*Partial, []QuarantineRecord) {
	t.Helper()
	tree := NewTree(cfg)
	defer tree.Close()
	for _, u := range ups {
		tree.Ingest(0, u)
	}
	return tree.Finish()
}

// TestTreeS1Bitwise: with one shard and sequential ingest the streaming
// fold is the buffered fold — bit for bit, weights included.
func TestTreeS1Bitwise(t *testing.T) {
	const dim = 257
	ups := randomUpdates(40, dim, 16, 1)
	want := referenceFold(dim, ups, false)
	got, quars := runTree(t, Config{Shards: 1, Dim: dim}, ups)
	if len(quars) != 0 {
		t.Fatalf("unexpected quarantines: %+v", quars)
	}
	if got.Count != want.Count || got.WeightSum != want.WeightSum {
		t.Fatalf("count/weight: got %d/%v want %d/%v", got.Count, got.WeightSum, want.Count, want.WeightSum)
	}
	for i := range want.Sum {
		if got.Sum[i] != want.Sum[i] {
			t.Fatalf("Sum[%d] differs bitwise: %v vs %v", i, got.Sum[i], want.Sum[i])
		}
	}
}

// TestTreeMultiShardTolerance: S>1 reassociates the summation, so the
// result matches the reference within accumulation tolerance and the
// weight sum is exact up to the same tolerance.
func TestTreeMultiShardTolerance(t *testing.T) {
	const dim = 300
	ups := randomUpdates(64, dim, 24, 2)
	want := referenceFold(dim, ups, false)
	for _, s := range []int{2, 3, 7} {
		got, _ := runTree(t, Config{Shards: s, Dim: dim}, ups)
		if got.Count != want.Count {
			t.Fatalf("S=%d: folded %d of %d", s, got.Count, want.Count)
		}
		if math.Abs(got.WeightSum-want.WeightSum) > 1e-9*math.Abs(want.WeightSum) {
			t.Fatalf("S=%d: weight sum %v vs %v", s, got.WeightSum, want.WeightSum)
		}
		for i := range want.Sum {
			if d := math.Abs(got.Sum[i] - want.Sum[i]); d > 1e-9*(1+math.Abs(want.Sum[i])) {
				t.Fatalf("S=%d: Sum[%d] off by %g", s, i, d)
			}
		}
	}
}

// TestTreeFixedOrderDeterminism: same shard count, same ingest order →
// bitwise identical merged partials, run after run.
func TestTreeFixedOrderDeterminism(t *testing.T) {
	const dim = 128
	ups := randomUpdates(50, dim, 12, 3)
	a, _ := runTree(t, Config{Shards: 4, Dim: dim}, ups)
	b, _ := runTree(t, Config{Shards: 4, Dim: dim}, ups)
	if a.WeightSum != b.WeightSum || a.Count != b.Count {
		t.Fatalf("scalar state differs: %v/%d vs %v/%d", a.WeightSum, a.Count, b.WeightSum, b.Count)
	}
	for i := range a.Sum {
		if a.Sum[i] != b.Sum[i] {
			t.Fatalf("Sum[%d] not deterministic: %v vs %v", i, a.Sum[i], b.Sum[i])
		}
	}
}

// TestTreeEdgeCases covers the degenerate rounds the aggregators must
// survive: no updates at all, all-zero weights, malformed updates
// dropped mid-stream, and a round where every update is rejected.
func TestTreeEdgeCases(t *testing.T) {
	const dim = 32
	t.Run("empty round", func(t *testing.T) {
		got, quars := runTree(t, Config{Shards: 3, Dim: dim}, nil)
		if got.Count != 0 || got.WeightSum != 0 || len(quars) != 0 {
			t.Fatalf("empty round produced state: %+v %+v", got, quars)
		}
	})
	t.Run("zero weights", func(t *testing.T) {
		ups := []Update{
			{Client: 0, Weight: 0, Delta: mkSparse(dim, []int32{1}, []float64{2})},
			{Client: 1, Weight: 0, Delta: mkSparse(dim, []int32{2}, []float64{3})},
		}
		got, _ := runTree(t, Config{Shards: 2, Dim: dim}, ups)
		if got.Count != 2 || got.WeightSum != 0 {
			t.Fatalf("zero-weight fold: count %d weight %v", got.Count, got.WeightSum)
		}
		// The caller's renormalisation guard (WeightSum == 0 → no-op)
		// is what keeps this from dividing by zero; Sum still holds the
		// raw zero-scaled fold.
		for i, v := range got.Sum {
			if v != 0 {
				t.Fatalf("Sum[%d] = %v for zero-weight folds", i, v)
			}
		}
	})
	t.Run("malformed dropped", func(t *testing.T) {
		good := Update{Client: 0, Weight: 1, Delta: mkSparse(dim, []int32{3}, []float64{1})}
		bad := Update{Client: 1, Weight: 1, Delta: mkSparse(dim, []int32{int32(dim) + 5}, []float64{9})}
		nilMsg := Update{Client: 2, Weight: 1, Delta: nil}
		got, quars := runTree(t, Config{Shards: 2, Dim: dim}, []Update{good, bad, nilMsg})
		if got.Count != 1 || got.WeightSum != 1 {
			t.Fatalf("kept %d updates, weight %v", got.Count, got.WeightSum)
		}
		if len(quars) != 2 {
			t.Fatalf("quarantined %d, want 2: %+v", len(quars), quars)
		}
		for _, q := range quars {
			if q.ClientID != 1 && q.ClientID != 2 {
				t.Errorf("quarantined wrong client %d", q.ClientID)
			}
		}
	})
	t.Run("all evicted", func(t *testing.T) {
		ups := []Update{
			{Client: 0, Weight: 1, Delta: mkSparse(dim, []int32{0}, []float64{math.NaN()})},
			{Client: 1, Weight: 1, Delta: mkSparse(dim, []int32{0, 1}, []float64{1})},
		}
		got, quars := runTree(t, Config{Shards: 2, Dim: dim}, ups)
		if got.Count != 0 || got.WeightSum != 0 {
			t.Fatalf("all-evicted round folded state: %+v", got)
		}
		if len(quars) != 2 {
			t.Fatalf("quarantined %d, want 2", len(quars))
		}
	})
}

// TestTreeUnweightedAndCtrl: SCAFFOLD mode folds with scale 1 and
// accumulates control-variate partials.
func TestTreeUnweightedAndCtrl(t *testing.T) {
	const dim = 16
	ctrl := make([]float64, dim)
	ctrl[4] = 2.5
	ups := []Update{
		{Client: 0, Weight: 7, Delta: mkSparse(dim, []int32{1}, []float64{1}), Ctrl: ctrl},
		{Client: 1, Weight: 9, Delta: mkSparse(dim, []int32{1}, []float64{3})},
	}
	got, _ := runTree(t, Config{Shards: 2, Dim: dim, Unweighted: true}, ups)
	if got.WeightSum != 2 || got.Count != 2 {
		t.Fatalf("unweighted fold: weight %v count %d", got.WeightSum, got.Count)
	}
	if got.Sum[1] != 4 {
		t.Fatalf("Sum[1] = %v, want 4", got.Sum[1])
	}
	if got.CtrlCount != 1 || got.CtrlSum == nil || got.CtrlSum[4] != 2.5 {
		t.Fatalf("ctrl partial wrong: count %d sum %+v", got.CtrlCount, got.CtrlSum)
	}
}

// TestTreeOnlineNormGate: after three honest updates establish a shard
// median, an absurd-magnitude update is quarantined; the honest ones
// fold through.
func TestTreeOnlineNormGate(t *testing.T) {
	const dim = 64
	tree := NewTree(Config{Shards: 1, Dim: dim, MaxNormMult: 5})
	defer tree.Close()
	for c := 0; c < 4; c++ {
		tree.Ingest(2, Update{Client: c, Weight: 1, Delta: mkSparse(dim, []int32{int32(c)}, []float64{1})})
	}
	tree.Ingest(2, Update{Client: 9, Weight: 1, Delta: mkSparse(dim, []int32{7}, []float64{1e8})})
	got, quars := tree.Finish()
	if got.Count != 4 {
		t.Fatalf("folded %d honest updates, want 4", got.Count)
	}
	if len(quars) != 1 || quars[0].ClientID != 9 || quars[0].Round != 2 {
		t.Fatalf("outlier not quarantined: %+v", quars)
	}
	if !strings.Contains(quars[0].Reason, "shard median") || quars[0].Norm != 1e8 {
		t.Fatalf("quarantine record incomplete: %+v", quars[0])
	}
	// Gate state is per round: after Finish the same outlier folds
	// unconditionally again until a fresh quorum accumulates.
	tree.Ingest(3, Update{Client: 9, Weight: 1, Delta: mkSparse(dim, []int32{7}, []float64{1e8})})
	got, quars = tree.Finish()
	if got.Count != 1 || len(quars) != 0 {
		t.Fatalf("gate state leaked across rounds: count %d quars %+v", got.Count, quars)
	}
}

// TestTreeBackpressure: a depth-1 queue with a stalled worker forces
// Ingest onto the blocking path, which must be counted — and must not
// lose updates.
func TestTreeBackpressure(t *testing.T) {
	const dim = 8
	reg := obs.NewRegistry()
	tree := NewTree(Config{Shards: 1, Dim: dim, QueueDepth: 1, Metrics: reg})
	tree.testFoldDelay = 2 * time.Millisecond
	defer tree.Close()

	const n = 20
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tree.Ingest(0, Update{Client: c, Weight: 1, Delta: mkSparse(dim, []int32{0}, []float64{1})})
		}()
	}
	wg.Wait()
	got, _ := tree.Finish()
	if got.Count != n {
		t.Fatalf("backpressure lost updates: folded %d of %d", got.Count, n)
	}
	if bp := reg.Counter("adafl_shard_backpressure_total").Value(); bp == 0 {
		t.Fatal("no backpressure recorded despite a stalled depth-1 queue")
	}
	if rc := reg.Counter(`adafl_shard_received_total{shard="0"}`).Value(); rc != n {
		t.Fatalf("received counter = %d, want %d", rc, n)
	}
}

// TestTreeSnapshotRestore: snapshot mid-round, replay the remainder on
// a restored tree, and the merged result is bitwise the uninterrupted
// run — including the norm-gate history surviving the restore.
func TestTreeSnapshotRestore(t *testing.T) {
	const dim = 96
	ups := randomUpdates(30, dim, 8, 7)
	cfg := Config{Shards: 3, Dim: dim, MaxNormMult: 50}

	full := NewTree(cfg)
	for _, u := range ups {
		full.Ingest(0, u)
	}
	want, _ := full.Finish()
	full.Close()

	half := NewTree(cfg)
	for _, u := range ups[:15] {
		half.Ingest(0, u)
	}
	st := half.Snapshot()
	half.Close()

	// Round-trip the snapshot through the crash-safe checkpoint codec,
	// as the rpc server does.
	path := filepath.Join(t.TempDir(), "tree.ckpt")
	if err := checkpoint.Save(path, st); err != nil {
		t.Fatal(err)
	}
	var loaded TreeState
	if err := checkpoint.Load(path, &loaded); err != nil {
		t.Fatal(err)
	}

	resumed := NewTree(cfg)
	defer resumed.Close()
	if err := resumed.Restore(&loaded); err != nil {
		t.Fatal(err)
	}
	for _, u := range ups[15:] {
		resumed.Ingest(0, u)
	}
	got, _ := resumed.Finish()
	if got.Count != want.Count || got.WeightSum != want.WeightSum {
		t.Fatalf("resumed scalars differ: %d/%v vs %d/%v", got.Count, got.WeightSum, want.Count, want.WeightSum)
	}
	for i := range want.Sum {
		if got.Sum[i] != want.Sum[i] {
			t.Fatalf("resumed Sum[%d] differs: %v vs %v", i, got.Sum[i], want.Sum[i])
		}
	}
}

// TestTreeRestoreGeometryMismatch: a snapshot from a different shard
// count or model must be refused, not silently misfolded.
func TestTreeRestoreGeometryMismatch(t *testing.T) {
	tree := NewTree(Config{Shards: 2, Dim: 8})
	defer tree.Close()
	if err := tree.Restore(&TreeState{Shards: 3, Dim: 8}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if err := tree.Restore(&TreeState{Shards: 2, Dim: 9}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := tree.Restore(nil); err != nil {
		t.Fatalf("nil snapshot should be a no-op: %v", err)
	}
}

// TestValidateExactlyOncePerUpdate pins the hot-path contract: the
// streaming ingest validates each update exactly once, malformed or
// not, and the fold itself never re-validates.
func TestValidateExactlyOncePerUpdate(t *testing.T) {
	const dim = 16
	ups := []Update{
		{Client: 0, Weight: 1, Delta: mkSparse(dim, []int32{1}, []float64{1})},
		{Client: 1, Weight: 1, Delta: mkSparse(dim, []int32{99}, []float64{1})}, // out of range
		{Client: 2, Weight: 1, Delta: mkSparse(dim, []int32{2}, []float64{2})},
	}
	before := compress.ValidateCalls()
	_, quars := runTree(t, Config{Shards: 2, Dim: dim}, ups)
	if got := compress.ValidateCalls() - before; got != int64(len(ups)) {
		t.Fatalf("ingest ran %d validations for %d updates", got, len(ups))
	}
	if len(quars) != 1 {
		t.Fatalf("quarantined %d, want 1", len(quars))
	}
}

// TestTreeMetrics: the shard-labelled instrument set reflects a round.
func TestTreeMetrics(t *testing.T) {
	const dim = 16
	reg := obs.NewRegistry()
	tree := NewTree(Config{Shards: 2, Dim: dim, Metrics: reg})
	defer tree.Close()
	for c := 0; c < 6; c++ {
		tree.Ingest(0, Update{Client: c, Weight: 1, Delta: mkSparse(dim, []int32{0}, []float64{1})})
	}
	tree.Ingest(0, Update{Client: 6, Weight: 1, Delta: nil}) // shard 0 reject
	tree.Finish()

	r0 := reg.Counter(`adafl_shard_received_total{shard="0"}`).Value()
	r1 := reg.Counter(`adafl_shard_received_total{shard="1"}`).Value()
	if r0+r1 != 7 || r0 != 4 || r1 != 3 {
		t.Fatalf("received split %d/%d, want 4/3", r0, r1)
	}
	if ev := reg.Counter(`adafl_shard_evicted_total{shard="0"}`).Value(); ev != 1 {
		t.Fatalf("evicted{shard=0} = %d, want 1", ev)
	}
	if n := reg.Histogram(`adafl_shard_fold_seconds{shard="1"}`, FoldLatencyBuckets).Count(); n != 3 {
		t.Fatalf("fold latency count = %d, want 3", n)
	}
	if n := reg.Histogram("adafl_shard_merge_seconds", obs.LatencyBuckets).Count(); n != 1 {
		t.Fatalf("merge latency count = %d, want 1", n)
	}
}

// TestScreenBufferedTagRoundTrip: the buffered screen preserves caller
// tags so the rpc server can map kept items back onto connections.
func TestScreenBufferedTagRoundTrip(t *testing.T) {
	const dim = 8
	items := []Item{
		{Client: 5, Tag: 0, Upd: mkSparse(dim, []int32{1}, []float64{1})},
		{Client: 6, Tag: 1, Upd: nil},
		{Client: 7, Tag: 2, Upd: mkSparse(dim, []int32{2}, []float64{2})},
	}
	kept, quars := Screen(1, dim, 0, items, nil)
	if len(kept) != 2 || kept[0].Tag != 0 || kept[1].Tag != 2 {
		t.Fatalf("kept tags wrong: %+v", kept)
	}
	if len(quars) != 1 || quars[0].ClientID != 6 {
		t.Fatalf("quarantine wrong: %+v", quars)
	}
}
