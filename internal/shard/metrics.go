package shard

import (
	"fmt"

	"adafl/internal/obs"
)

// FoldLatencyBuckets covers a single sparse fold: sub-microsecond for a
// small top-k message up to seconds if a worker is descheduled.
var FoldLatencyBuckets = obs.ExpBuckets(1e-6, 4, 14)

// treeMetrics is the tree-wide instrument set. With a nil registry every
// instrument is nil and recording is a no-op (see internal/obs), so an
// unobserved tree pays nothing.
//
// The catalogue, with types and label conventions, is documented in
// DESIGN.md §Sharded aggregation.
type treeMetrics struct {
	backpressure *obs.Counter   // adafl_shard_backpressure_total
	mergeSec     *obs.Histogram // adafl_shard_merge_seconds
}

func newTreeMetrics(r *obs.Registry) treeMetrics {
	return treeMetrics{
		backpressure: r.Counter("adafl_shard_backpressure_total"),
		mergeSec:     r.Histogram("adafl_shard_merge_seconds", obs.LatencyBuckets),
	}
}

// shardMetrics is the per-worker instrument set, labelled by shard index
// so a dashboard can spot one hot or stalled shard among its peers.
type shardMetrics struct {
	queueDepth *obs.Gauge     // adafl_shard_queue_depth{shard="i"}
	foldSec    *obs.Histogram // adafl_shard_fold_seconds{shard="i"}
	received   *obs.Counter   // adafl_shard_received_total{shard="i"}
	evicted    *obs.Counter   // adafl_shard_evicted_total{shard="i"}
}

func newShardMetrics(r *obs.Registry, shard int) shardMetrics {
	label := fmt.Sprintf(`{shard="%d"}`, shard)
	return shardMetrics{
		queueDepth: r.Gauge("adafl_shard_queue_depth" + label),
		foldSec:    r.Histogram("adafl_shard_fold_seconds"+label, FoldLatencyBuckets),
		received:   r.Counter("adafl_shard_received_total" + label),
		evicted:    r.Counter("adafl_shard_evicted_total" + label),
	}
}
