package shard

import "adafl/internal/compress"

// Partial is one node's running aggregate: the weighted sum of every
// delta folded so far plus the scalars needed to renormalise exactly at
// the root. Memory is constant in the number of folded updates — one
// dense Dim-length vector (plus one more once a SCAFFOLD control delta
// arrives) regardless of fleet size.
//
// The fold is the two-phase form of FedAvg: Sum accumulates w_u·Δ_u and
// WeightSum accumulates w_u, so the root's Axpy(1/WeightSum, Sum, global)
// reproduces the buffered aggregators bit for bit when the fold order
// matches the buffered update order (see DESIGN.md §Sharded aggregation
// for the determinism contract).
type Partial struct {
	// Dim is the model dimension every folded delta must declare.
	Dim int
	// Sum is Σ scale_u · Δ_u, densified.
	Sum []float64
	// WeightSum is Σ scale_u (equals Count in unweighted mode).
	WeightSum float64
	// Count is the number of folded updates.
	Count int
	// CtrlSum is Σ Δc_u over updates carrying a SCAFFOLD control delta
	// (nil until the first one arrives); CtrlCount counts them.
	CtrlSum   []float64
	CtrlCount int
}

// NewPartial returns an empty partial for a dim-parameter model.
func NewPartial(dim int) *Partial {
	return &Partial{Dim: dim, Sum: make([]float64, dim)}
}

// Fold accumulates one update. The delta must already have passed
// Validate(Dim) — Fold itself never re-validates, which is what keeps
// the ingest path at exactly one validation per update. In unweighted
// mode (SCAFFOLD) every update folds with scale 1 instead of u.Weight.
func (p *Partial) Fold(u Update, unweighted bool) {
	scale := u.Weight
	if unweighted {
		scale = 1
	}
	u.Delta.AddTo(p.Sum, scale)
	p.WeightSum += scale
	p.Count++
	if u.Ctrl != nil {
		if p.CtrlSum == nil {
			p.CtrlSum = make([]float64, p.Dim)
		}
		for i, v := range u.Ctrl {
			p.CtrlSum[i] += v
		}
		p.CtrlCount++
	}
}

// Merge folds q into p coordinate-wise. The root reducer calls Merge in
// ascending shard order, which fixes the floating-point summation order
// and makes the tree result bit-deterministic for a given shard count,
// routing and per-shard fold order.
func (p *Partial) Merge(q *Partial) {
	if q == nil || q.Count == 0 && q.CtrlCount == 0 {
		return
	}
	if q.Dim != p.Dim {
		panic("shard: merging partials of different dimensions")
	}
	for i, v := range q.Sum {
		p.Sum[i] += v
	}
	p.WeightSum += q.WeightSum
	p.Count += q.Count
	if q.CtrlSum != nil {
		if p.CtrlSum == nil {
			p.CtrlSum = make([]float64, p.Dim)
		}
		for i, v := range q.CtrlSum {
			p.CtrlSum[i] += v
		}
		p.CtrlCount += q.CtrlCount
	}
}

// Reset zeroes the partial for the next round, keeping allocations.
func (p *Partial) Reset() {
	for i := range p.Sum {
		p.Sum[i] = 0
	}
	p.WeightSum = 0
	p.Count = 0
	if p.CtrlSum != nil {
		for i := range p.CtrlSum {
			p.CtrlSum[i] = 0
		}
	}
	p.CtrlCount = 0
}

// Clone returns a deep copy (checkpoint snapshots must not alias live
// worker state).
func (p *Partial) Clone() *Partial {
	q := &Partial{Dim: p.Dim, Sum: append([]float64(nil), p.Sum...),
		WeightSum: p.WeightSum, Count: p.Count, CtrlCount: p.CtrlCount}
	if p.CtrlSum != nil {
		q.CtrlSum = append([]float64(nil), p.CtrlSum...)
	}
	return q
}

// Update is one client contribution as the shard tree ingests it.
type Update struct {
	// Client is the contributing client's id (also the routing key).
	Client int
	// Weight is the client's aggregation weight (ignored in unweighted
	// mode).
	Weight float64
	// Delta is the sparse model delta.
	Delta *compress.Sparse
	// Ctrl optionally carries a SCAFFOLD control-variate delta.
	Ctrl []float64
}
