package shard

import (
	"fmt"
	"sort"

	"adafl/internal/compress"
)

// Logf is the logging callback type shared with the engines.
type Logf func(format string, args ...interface{})

func quiet(string, ...interface{}) {}

// QuarantineRecord documents one rejected client update: which client,
// which round, why, and the update's L2 norm (0 for structural rejects,
// where the norm is not trustworthy). Quarantined updates are never
// folded; the caller evicts the offending client exactly like a
// straggler, so its weight leaves the renormalisation.
type QuarantineRecord struct {
	Round    int
	ClientID int
	Reason   string
	Norm     float64
}

// Item pairs an update with its sender for the buffered screen. Tag is
// an opaque caller token (the rpc server stores its slice index there to
// map kept items back onto connections).
type Item struct {
	Client int
	Tag    int
	Upd    *compress.Sparse
}

// NormGateMinUpdates is the minimum number of structurally valid
// updates before the median-relative norm gate engages: with fewer, the
// median is dominated by the very update under judgment and the gate
// would be deciding against itself.
const NormGateMinUpdates = 3

// Screen is the buffered (single-shot) integrity screen, used when the
// server aggregates at the barrier: it validates every received update
// before aggregation and returns the survivors plus quarantine records
// for the rejects:
//
//  1. Structural validation (compress.Sparse.Validate): declared
//     dimension, index/value pairing, index bounds. A failure here would
//     panic the aggregation or silently corrupt the model.
//  2. Non-finite scrubbing (compress.Sparse.Scrub): NaN/Inf values are
//     zeroed in place; an update with no finite signal at all is
//     quarantined rather than applied as a zero update from a client
//     whose training has diverged.
//  3. L2-norm outlier gate: with maxNormMult > 0 and at least
//     NormGateMinUpdates survivors, updates whose norm exceeds
//     maxNormMult times the round's median norm are quarantined. The
//     median is robust to the outliers being gated; the gate is skipped
//     when the median is zero (an all-zero round has no scale to judge
//     against).
//
// Screen mutates only the updates' values (scrubbing) and never
// reorders kept items. The streaming shard workers run the same checks
// per update, with the causal variant of the norm gate (see onlineGate).
func Screen(round, dim int, maxNormMult float64, ups []Item, logf Logf) (keep []Item, quarantined []QuarantineRecord) {
	if logf == nil {
		logf = quiet
	}
	keep = make([]Item, 0, len(ups))
	for _, u := range ups {
		if err := u.Upd.Validate(dim); err != nil {
			quarantined = append(quarantined, QuarantineRecord{
				Round: round, ClientID: u.Client, Reason: err.Error(),
			})
			continue
		}
		if n := u.Upd.Scrub(); n > 0 {
			if n == u.Upd.NNZ() {
				quarantined = append(quarantined, QuarantineRecord{
					Round: round, ClientID: u.Client,
					Reason: fmt.Sprintf("update entirely non-finite (%d values)", n),
				})
				continue
			}
			logf("server: round %d: scrubbed %d non-finite values from client %d",
				round+1, n, u.Client)
		}
		keep = append(keep, u)
	}

	if maxNormMult <= 0 || len(keep) < NormGateMinUpdates {
		return keep, quarantined
	}
	norms := make([]float64, len(keep))
	for i, u := range keep {
		norms[i] = u.Upd.Norm2()
	}
	med := Median(norms)
	if med <= 0 {
		return keep, quarantined
	}
	limit := maxNormMult * med
	gated := keep[:0]
	for i, u := range keep {
		if norms[i] > limit {
			quarantined = append(quarantined, QuarantineRecord{
				Round: round, ClientID: u.Client, Norm: norms[i],
				Reason: fmt.Sprintf("L2 norm %.4g exceeds %.4g (%.3g x round median %.4g)",
					norms[i], limit, maxNormMult, med),
			})
			continue
		}
		gated = append(gated, u)
	}
	return gated, quarantined
}

// Median returns the median of xs (mean of the middle pair for even
// counts). xs is copied, not mutated.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// onlineGate is the streaming form of the median-relative norm gate. A
// shard cannot hold the round's updates back to compute a retrospective
// median — that would reintroduce the O(clients) buffering the tree
// exists to remove — so the gate is causal: an update is judged against
// the median of the norms this shard has already accepted this round,
// once at least NormGateMinUpdates of them exist. Updates arriving
// before the quorum fold unconditionally, exactly as the buffered gate
// declines to judge rounds with fewer than NormGateMinUpdates updates.
// Only O(updates-per-shard) scalars are retained.
type onlineGate struct {
	mult  float64
	norms []float64 // accepted norms this round, kept sorted
}

// admit reports whether an update with the given norm passes the gate,
// returning the median it was judged against (0 when the gate did not
// engage). Accepted norms join the running median; rejected ones do
// not — a flood of outliers must not drag the median toward itself.
func (g *onlineGate) admit(norm float64) (ok bool, med float64) {
	if g.mult > 0 && len(g.norms) >= NormGateMinUpdates {
		med = g.median()
		if med > 0 && norm > g.mult*med {
			return false, med
		}
	}
	i := sort.SearchFloat64s(g.norms, norm)
	g.norms = append(g.norms, 0)
	copy(g.norms[i+1:], g.norms[i:])
	g.norms[i] = norm
	return true, med
}

// median of the sorted accepted norms, O(1).
func (g *onlineGate) median() float64 {
	n := len(g.norms)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return g.norms[n/2]
	}
	return (g.norms[n/2-1] + g.norms[n/2]) / 2
}

// reset clears the per-round gate state, keeping the backing array.
func (g *onlineGate) reset() { g.norms = g.norms[:0] }
