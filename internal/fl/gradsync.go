package fl

import (
	"math"

	"adafl/internal/compress"
	"adafl/internal/netsim"
	"adafl/internal/tensor"
)

// GradSyncEngine implements distributed synchronous SGD with gradient
// exchange — the setting Deep Gradient Compression was designed for, as
// opposed to the FedAvg-style delta exchange of SyncEngine. Every step,
// each participating client computes ONE mini-batch gradient on the
// current global model, compresses it (momentum correction is valid here:
// the codec replaces the optimizer's momentum), and the server applies the
// weighted aggregate with a plain SGD step.
//
// It complements SyncEngine in two ways: it is the reference environment
// for validating the momentum-correction half of DGC end to end, and it
// models deployments that synchronise every step (cross-silo training
// rigs) rather than every local epoch.
type GradSyncEngine struct {
	Fed *Federation
	// LR is the server's SGD step size.
	LR float64
	// Ratio is the uplink compression ratio requested from every client.
	Ratio float64
	// EvalEvery evaluates every k steps (default 10).
	EvalEvery int

	Global  []float64
	Weights []float64
	Hist    History

	step    int
	now     float64
	upBytes int64
}

// NewGradSyncEngine builds the engine. Clients' codecs are used as-is;
// install momentum-corrected DGC via AttachGradDGC for the classic setup.
func NewGradSyncEngine(fed *Federation, lr, ratio float64) *GradSyncEngine {
	if lr <= 0 {
		panic("fl: non-positive learning rate")
	}
	if ratio < 1 {
		ratio = 1
	}
	return &GradSyncEngine{
		Fed: fed, LR: lr, Ratio: ratio, EvalEvery: 10,
		Global:  fed.NewModel().ParamVector(),
		Weights: fed.Weights(),
	}
}

// AttachGradDGC installs momentum-corrected DGC codecs on every client —
// correct in this engine because raw gradients (not momentum-bearing
// deltas) are exchanged and the server applies plain SGD.
func AttachGradDGC(fed *Federation, momentum, clipNorm float64) {
	for _, c := range fed.Clients {
		c.Codec = &compress.DGC{Momentum: momentum, ClipNorm: clipNorm}
	}
}

// TotalUplinkBytes returns cumulative uplink volume.
func (e *GradSyncEngine) TotalUplinkBytes() int64 { return e.upBytes }

// Steps returns the number of executed steps.
func (e *GradSyncEngine) Steps() int { return e.step }

// RunSteps executes n synchronous gradient steps.
func (e *GradSyncEngine) RunSteps(n int) {
	for i := 0; i < n; i++ {
		e.runStep()
	}
}

// runStep performs one global SGD step from compressed client gradients.
func (e *GradSyncEngine) runStep() {
	dim := len(e.Global)
	agg := make([]float64, dim)
	weightSum := 0.0
	stepDur := 0.0
	for _, c := range e.Fed.Clients {
		if c.Data.Len() == 0 {
			continue
		}
		grad := c.BatchGradient(e.Global)
		msg := c.EncodeDelta(grad, e.Ratio)
		dur, lost := e.Fed.Net.Transfer(c.ID, netsim.Uplink, msg.WireBytes(), e.now)
		e.upBytes += int64(msg.WireBytes())
		if lost {
			continue
		}
		compDur := c.Device.SecondsForFLOPs(c.Model.FLOPsPerSample() *
			(1 + c.Device.BackwardFactor) * float64(c.Cfg.BatchSize))
		if d := dur + compDur; d > stepDur {
			stepDur = d
		}
		msg.AddTo(agg, e.Weights[c.ID])
		weightSum += e.Weights[c.ID]
	}
	if weightSum > 0 {
		tensor.Axpy(-e.LR/weightSum, agg, e.Global)
	}
	e.now += stepDur
	e.step++

	row := RoundStats{
		Round: e.step, Time: e.now,
		TestAcc: math.NaN(), TestLoss: math.NaN(),
		Participants: len(e.Fed.Clients), Received: len(e.Fed.Clients),
		UplinkBytes: e.upBytes, Updates: e.step * len(e.Fed.Clients),
	}
	if e.EvalEvery > 0 && e.step%e.EvalEvery == 0 {
		row.TestAcc, row.TestLoss = e.Fed.Evaluate(e.Global)
	}
	e.Hist.Add(row)
}

// BatchGradient computes one mini-batch gradient of the client's loss at
// the given parameters (without updating the local model's training
// state), in the flat vector layout.
func (c *Client) BatchGradient(params []float64) []float64 {
	if c.iter == nil {
		return make([]float64, len(params))
	}
	c.Model.SetParamVector(params)
	x, labels := c.iter.Next()
	c.Model.ZeroGrads()
	c.Model.TrainBatch(x, labels)
	return c.Model.GradVector()
}
