package fl

import (
	"adafl/internal/shard"
	"adafl/internal/tensor"
)

// PartialApplier is the streaming-aggregation counterpart of
// Aggregator.Apply: instead of a buffered update slice it consumes the
// merged root partial of a shard tree (internal/shard) — the weighted
// delta sum plus the scalars needed to renormalise exactly. An
// aggregator that implements it can run behind the sharded ingest path
// with constant server memory; the contract is that for a single shard
// and matching fold order ApplyPartial moves the global model bit for
// bit as Apply would (the aggregators' Apply methods are written in the
// identical two-phase sum-then-scale form to make that hold).
type PartialApplier interface {
	Aggregator
	// ApplyPartial applies the merged partial to the global model.
	ApplyPartial(global []float64, p *shard.Partial)
	// PartialUnweighted reports whether updates must fold with scale 1
	// (SCAFFOLD) instead of their data weight.
	PartialUnweighted() bool
}

// ApplyPartial implements PartialApplier: w ← w + Sum/ΣW, the second
// phase of the two-phase FedAvg in Apply.
func (FedAvg) ApplyPartial(global []float64, p *shard.Partial) {
	if p == nil || p.Count == 0 || p.WeightSum == 0 {
		return
	}
	tensor.Axpy(1/p.WeightSum, p.Sum, global)
}

// PartialUnweighted implements PartialApplier.
func (FedAvg) PartialUnweighted() bool { return false }

// ApplyPartial implements PartialApplier: the Adam step over the
// renormalised negated partial, same expression as Apply's second phase.
func (f *FedAdam) ApplyPartial(global []float64, p *shard.Partial) {
	if p == nil || p.Count == 0 || p.WeightSum == 0 {
		return
	}
	avg := make([]float64, len(global))
	inv := 1 / p.WeightSum
	for i, v := range p.Sum {
		avg[i] = -v * inv
	}
	step := f.adam.DirectionVec(avg)
	tensor.Axpy(1, step, global)
}

// PartialUnweighted implements PartialApplier.
func (*FedAdam) PartialUnweighted() bool { return false }

// ApplyPartial implements PartialApplier. The partial must come from an
// unweighted fold (PartialUnweighted → the tree folds with scale 1), so
// Sum is the plain delta sum and Count is |S|.
func (s *Scaffold) ApplyPartial(global []float64, p *shard.Partial) {
	if p == nil || p.Count == 0 {
		return
	}
	inv := 1 / float64(p.Count)
	tensor.Axpy(s.GlobalLR*inv, p.Sum, global)
	// c ← c + |S|/N · mean(Δc_i)
	if p.CtrlSum != nil {
		cc := s.C(len(global))
		scale := float64(p.Count) / float64(s.NumClients) * inv
		tensor.Axpy(scale, p.CtrlSum, cc)
	}
}

// PartialUnweighted implements PartialApplier.
func (*Scaffold) PartialUnweighted() bool { return true }

// ShardedBuffer is FedBuff restructured over the shard tree: arriving
// deltas stream into shard partials instead of a size-K buffer of dense
// vectors, so server memory is O(shards·dim) instead of O(K·dim). When
// K updates have been folded the merged partial is applied with server
// learning rate Eta and the tree resets. Semantically it is FedBuff
// with the flush average computed sum-then-scale; the two agree within
// floating-point reassociation tolerance.
type ShardedBuffer struct {
	// K is the flush threshold (FedBuff's buffer size).
	K int
	// Eta is the server learning rate applied to the flushed average.
	Eta float64
	// Shards is the fan-out of the ingest tree (default 1).
	Shards int

	tree     *shard.Tree
	buffered int
}

// NewShardedBuffer returns a streaming buffered-async server with flush
// threshold k and fan-out shards.
func NewShardedBuffer(k int, eta float64, shards int) *ShardedBuffer {
	if k <= 0 {
		panic("fl: ShardedBuffer flush threshold must be positive")
	}
	if shards <= 0 {
		shards = 1
	}
	return &ShardedBuffer{K: k, Eta: eta, Shards: shards}
}

// Name implements AsyncStrategy.
func (*ShardedBuffer) Name() string { return "shardedbuffer" }

// Buffered returns how many updates have streamed in since the last
// flush.
func (b *ShardedBuffer) Buffered() int { return b.buffered }

// OnReceive implements AsyncStrategy.
func (b *ShardedBuffer) OnReceive(global, _ []float64, u Update) bool {
	if b.tree == nil {
		b.tree = shard.NewTree(shard.Config{
			Shards: b.Shards, Dim: len(global), Unweighted: true,
		})
	}
	b.tree.Ingest(0, shard.Update{Client: u.Client, Weight: 1, Delta: u.Delta})
	b.buffered++
	if b.buffered < b.K {
		return false
	}
	part, _ := b.tree.Finish()
	b.buffered = 0
	if part.Count == 0 {
		return false
	}
	tensor.Axpy(b.Eta/float64(part.Count), part.Sum, global)
	return true
}

// Close tears down the ingest workers. Safe to call more than once.
func (b *ShardedBuffer) Close() {
	if b.tree != nil {
		b.tree.Close()
		b.tree = nil
	}
}
