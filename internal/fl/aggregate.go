package fl

import (
	"math"

	"adafl/internal/nn"
	"adafl/internal/tensor"
)

// Aggregator combines the updates received in one synchronous round into
// the global model vector (mutated in place).
type Aggregator interface {
	Name() string
	Apply(global []float64, updates []Update)
}

// validUpdates filters out structurally malformed deltas (nil message,
// wrong dimension, index/value length mismatch, out-of-range indices)
// before any aggregator touches them: a single bad update from one
// client must not panic the server or silently corrupt the global
// model. Dropped updates also leave the weight normalisation, exactly
// like an evicted straggler's would.
func validUpdates(dim int, updates []Update) []Update {
	ok := true
	for _, u := range updates {
		if u.Delta.Validate(dim) != nil {
			ok = false
			break
		}
	}
	if ok {
		return updates
	}
	kept := make([]Update, 0, len(updates))
	for _, u := range updates {
		if u.Delta.Validate(dim) == nil {
			kept = append(kept, u)
		}
	}
	return kept
}

// FedAvg is weighted model averaging (McMahan et al.): the global model
// moves to the data-weighted mean of the participants' local models.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Apply implements Aggregator.
func (FedAvg) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	totalW := 0.0
	for _, u := range updates {
		totalW += u.Weight
	}
	if totalW == 0 {
		return
	}
	for _, u := range updates {
		u.Delta.AddTo(global, u.Weight/totalW)
	}
}

// FedAdam applies server-side Adam (Reddi et al.) to the averaged client
// delta, treated as a pseudo-gradient.
type FedAdam struct {
	adam *nn.Adam
}

// NewFedAdam returns a FedAdam aggregator with server learning rate lr.
func NewFedAdam(lr float64) *FedAdam {
	return &FedAdam{adam: nn.NewAdam(lr, 0, 0, 0)}
}

// Name implements Aggregator.
func (*FedAdam) Name() string { return "fedadam" }

// Apply implements Aggregator.
func (f *FedAdam) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	totalW := 0.0
	for _, u := range updates {
		totalW += u.Weight
	}
	if totalW == 0 {
		return
	}
	avg := make([]float64, len(global))
	for _, u := range updates {
		u.Delta.AddTo(avg, u.Weight/totalW)
	}
	// Pseudo-gradient is the negated average delta; DirectionVec returns
	// the descent step −lr·m̂/(√v̂+ε), which then moves along +Δ.
	for i := range avg {
		avg[i] = -avg[i]
	}
	step := f.adam.DirectionVec(avg)
	tensor.Axpy(1, step, global)
}

// Scaffold is the server half of SCAFFOLD (Karimireddy et al.): unweighted
// averaging of client deltas with a global learning rate, plus maintenance
// of the server control variate c.
type Scaffold struct {
	// GlobalLR is the server step size η_g (1.0 in the paper's default).
	GlobalLR float64
	// NumClients is the federation size N, used to scale the control
	// variate update by |S|/N.
	NumClients int

	c []float64
}

// NewScaffold returns the SCAFFOLD server state for a federation of n
// clients.
func NewScaffold(globalLR float64, n int) *Scaffold {
	return &Scaffold{GlobalLR: globalLR, NumClients: n}
}

// Name implements Aggregator.
func (*Scaffold) Name() string { return "scaffold" }

// C returns the server control variate, lazily sized to dim. The engine
// hands it to clients before each round.
func (s *Scaffold) C(dim int) []float64 {
	if s.c == nil {
		s.c = make([]float64, dim)
	}
	return s.c
}

// Apply implements Aggregator.
func (s *Scaffold) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	inv := 1 / float64(len(updates))
	for _, u := range updates {
		u.Delta.AddTo(global, s.GlobalLR*inv)
	}
	// c ← c + |S|/N · mean(Δc_i)
	cc := s.C(len(global))
	scale := float64(len(updates)) / float64(s.NumClients) * inv
	for _, u := range updates {
		if u.CtrlDelta == nil {
			continue
		}
		tensor.Axpy(scale, u.CtrlDelta, cc)
	}
}

// AsyncStrategy processes updates one at a time as they arrive at the
// asynchronous server.
type AsyncStrategy interface {
	Name() string
	// OnReceive applies one arriving update. downloaded is the global
	// parameter snapshot the client trained from. It reports whether the
	// global model version advanced (FedBuff only advances on flush).
	OnReceive(global []float64, downloaded []float64, u Update) bool
}

// FedAsync is asynchronous federated optimization (Xie et al.): on each
// arrival the server mixes the client model in with a staleness-decayed
// factor α_s = Alpha · (1+staleness)^(−Decay).
type FedAsync struct {
	// Alpha is the base mixing weight.
	Alpha float64
	// Decay is the polynomial staleness exponent a (0 disables decay).
	Decay float64
}

// Name implements AsyncStrategy.
func (FedAsync) Name() string { return "fedasync" }

// StalenessWeight returns α_s for the given staleness.
func (f FedAsync) StalenessWeight(staleness int) float64 {
	w := f.Alpha
	if f.Decay > 0 {
		w *= math.Pow(1+float64(staleness), -f.Decay)
	}
	return w
}

// OnReceive implements AsyncStrategy.
func (f FedAsync) OnReceive(global, downloaded []float64, u Update) bool {
	alpha := f.StalenessWeight(u.Staleness)
	// w ← (1−α)w + α·(w_downloaded + Δ)
	clientModel := tensor.CopyVec(downloaded)
	u.Delta.AddTo(clientModel, 1)
	for i := range global {
		global[i] = (1-alpha)*global[i] + alpha*clientModel[i]
	}
	return true
}

// FedBuff is buffered asynchronous aggregation (Nguyen et al.): deltas
// accumulate in a size-K buffer; when full, their average is applied with
// server learning rate Eta.
type FedBuff struct {
	// K is the buffer size.
	K int
	// Eta is the server learning rate applied to the buffered average.
	Eta float64

	buf [][]float64
}

// NewFedBuff returns a FedBuff server with buffer size k.
func NewFedBuff(k int, eta float64) *FedBuff {
	if k <= 0 {
		panic("fl: FedBuff buffer size must be positive")
	}
	return &FedBuff{K: k, Eta: eta}
}

// Name implements AsyncStrategy.
func (*FedBuff) Name() string { return "fedbuff" }

// Buffered returns the current buffer occupancy.
func (f *FedBuff) Buffered() int { return len(f.buf) }

// OnReceive implements AsyncStrategy.
func (f *FedBuff) OnReceive(global, _ []float64, u Update) bool {
	f.buf = append(f.buf, u.Delta.Dense())
	if len(f.buf) < f.K {
		return false
	}
	inv := f.Eta / float64(len(f.buf))
	for _, d := range f.buf {
		tensor.Axpy(inv, d, global)
	}
	f.buf = f.buf[:0]
	return true
}
