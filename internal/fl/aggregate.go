package fl

import (
	"math"

	"adafl/internal/nn"
	"adafl/internal/tensor"
)

// Aggregator combines the updates received in one synchronous round into
// the global model vector (mutated in place).
type Aggregator interface {
	Name() string
	Apply(global []float64, updates []Update)
}

// validUpdates filters out structurally malformed deltas (nil message,
// wrong dimension, index/value length mismatch, out-of-range indices)
// before any aggregator touches them: a single bad update from one
// client must not panic the server or silently corrupt the global
// model. Dropped updates also leave the weight normalisation, exactly
// like an evicted straggler's would.
//
// Each update is validated exactly once: the scan stops at the first
// failure, the already-vetted prefix is kept as-is, and only the
// remainder is validated while filtering. Validation walks every index
// of a message, so double-validating the common all-valid case would
// double the screening cost of the aggregation hot path.
func validUpdates(dim int, updates []Update) []Update {
	bad := -1
	for i, u := range updates {
		if u.Delta.Validate(dim) != nil {
			bad = i
			break
		}
	}
	if bad < 0 {
		return updates
	}
	kept := make([]Update, 0, len(updates)-1)
	kept = append(kept, updates[:bad]...)
	for _, u := range updates[bad+1:] {
		if u.Delta.Validate(dim) == nil {
			kept = append(kept, u)
		}
	}
	return kept
}

// FedAvg is weighted model averaging (McMahan et al.): the global model
// moves to the data-weighted mean of the participants' local models.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Apply implements Aggregator. The arithmetic is the two-phase
// sum-then-scale form — accumulate Σ w_u·Δ_u into a scratch vector in
// update order, then renormalise by Σ w_u in one Axpy — which is exactly
// the fold a single shard performs (internal/shard.Partial), so the
// streaming path at Shards=1 reproduces this bit for bit.
func (FedAvg) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	agg := make([]float64, len(global))
	totalW := 0.0
	for _, u := range updates {
		u.Delta.AddTo(agg, u.Weight)
		totalW += u.Weight
	}
	if totalW == 0 {
		return
	}
	tensor.Axpy(1/totalW, agg, global)
}

// FedAdam applies server-side Adam (Reddi et al.) to the averaged client
// delta, treated as a pseudo-gradient.
type FedAdam struct {
	adam *nn.Adam
}

// NewFedAdam returns a FedAdam aggregator with server learning rate lr.
func NewFedAdam(lr float64) *FedAdam {
	return &FedAdam{adam: nn.NewAdam(lr, 0, 0, 0)}
}

// Name implements Aggregator.
func (*FedAdam) Name() string { return "fedadam" }

// Apply implements Aggregator. Two-phase like FedAvg: the weighted sum
// accumulates first, the 1/Σw renormalisation folds into the negation,
// so a shard partial drives the identical Adam step (see ApplyPartial).
func (f *FedAdam) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	avg := make([]float64, len(global))
	totalW := 0.0
	for _, u := range updates {
		u.Delta.AddTo(avg, u.Weight)
		totalW += u.Weight
	}
	if totalW == 0 {
		return
	}
	// Pseudo-gradient is the negated average delta; DirectionVec returns
	// the descent step −lr·m̂/(√v̂+ε), which then moves along +Δ.
	inv := 1 / totalW
	for i := range avg {
		avg[i] = -avg[i] * inv
	}
	step := f.adam.DirectionVec(avg)
	tensor.Axpy(1, step, global)
}

// Scaffold is the server half of SCAFFOLD (Karimireddy et al.): unweighted
// averaging of client deltas with a global learning rate, plus maintenance
// of the server control variate c.
type Scaffold struct {
	// GlobalLR is the server step size η_g (1.0 in the paper's default).
	GlobalLR float64
	// NumClients is the federation size N, used to scale the control
	// variate update by |S|/N.
	NumClients int

	c []float64
}

// NewScaffold returns the SCAFFOLD server state for a federation of n
// clients.
func NewScaffold(globalLR float64, n int) *Scaffold {
	return &Scaffold{GlobalLR: globalLR, NumClients: n}
}

// Name implements Aggregator.
func (*Scaffold) Name() string { return "scaffold" }

// C returns the server control variate, lazily sized to dim. The engine
// hands it to clients before each round.
func (s *Scaffold) C(dim int) []float64 {
	if s.c == nil {
		s.c = make([]float64, dim)
	}
	return s.c
}

// Apply implements Aggregator. Two-phase and unweighted: deltas and
// control deltas both accumulate with scale 1 in update order, then one
// Axpy each applies the η_g/|S| and |S|/N·(1/|S|) scalings — matching
// the unweighted shard fold (see ApplyPartial).
func (s *Scaffold) Apply(global []float64, updates []Update) {
	updates = validUpdates(len(global), updates)
	if len(updates) == 0 {
		return
	}
	dim := len(global)
	agg := make([]float64, dim)
	var ctrlSum []float64
	for _, u := range updates {
		u.Delta.AddTo(agg, 1)
		if u.CtrlDelta != nil {
			if ctrlSum == nil {
				ctrlSum = make([]float64, dim)
			}
			for i, v := range u.CtrlDelta {
				ctrlSum[i] += v
			}
		}
	}
	inv := 1 / float64(len(updates))
	tensor.Axpy(s.GlobalLR*inv, agg, global)
	// c ← c + |S|/N · mean(Δc_i)
	if ctrlSum != nil {
		cc := s.C(dim)
		scale := float64(len(updates)) / float64(s.NumClients) * inv
		tensor.Axpy(scale, ctrlSum, cc)
	}
}

// AsyncStrategy processes updates one at a time as they arrive at the
// asynchronous server.
type AsyncStrategy interface {
	Name() string
	// OnReceive applies one arriving update. downloaded is the global
	// parameter snapshot the client trained from. It reports whether the
	// global model version advanced (FedBuff only advances on flush).
	OnReceive(global []float64, downloaded []float64, u Update) bool
}

// FedAsync is asynchronous federated optimization (Xie et al.): on each
// arrival the server mixes the client model in with a staleness-decayed
// factor α_s = Alpha · (1+staleness)^(−Decay).
type FedAsync struct {
	// Alpha is the base mixing weight.
	Alpha float64
	// Decay is the polynomial staleness exponent a (0 disables decay).
	Decay float64
}

// Name implements AsyncStrategy.
func (FedAsync) Name() string { return "fedasync" }

// StalenessWeight returns α_s for the given staleness.
func (f FedAsync) StalenessWeight(staleness int) float64 {
	w := f.Alpha
	if f.Decay > 0 {
		w *= math.Pow(1+float64(staleness), -f.Decay)
	}
	return w
}

// OnReceive implements AsyncStrategy.
func (f FedAsync) OnReceive(global, downloaded []float64, u Update) bool {
	alpha := f.StalenessWeight(u.Staleness)
	// w ← (1−α)w + α·(w_downloaded + Δ)
	clientModel := tensor.CopyVec(downloaded)
	u.Delta.AddTo(clientModel, 1)
	for i := range global {
		global[i] = (1-alpha)*global[i] + alpha*clientModel[i]
	}
	return true
}

// StalenessWeight is the single source of truth for FedBuff-style
// staleness discounting: an update trained against a model s versions
// old contributes with weight 1/sqrt(1+s). Both the in-process
// AsyncEngine strategy (FedBuff) and the wire-mode session buffer
// (internal/session) use this function, so their trajectories are
// directly comparable; a staleness of 0 yields exactly 1.
func StalenessWeight(staleness int) float64 {
	if staleness <= 0 {
		return 1
	}
	return 1 / math.Sqrt(1+float64(staleness))
}

// FedBuff is buffered asynchronous aggregation (Nguyen et al.): deltas
// accumulate in a size-K buffer; when full, their staleness-weighted
// average is applied with server learning rate Eta. Each buffered delta
// is weighted by StalenessWeight(staleness), so a fresh buffer (all
// staleness 0) reduces to the plain mean.
type FedBuff struct {
	// K is the buffer size.
	K int
	// Eta is the server learning rate applied to the buffered average.
	Eta float64

	buf     [][]float64
	weights []float64
}

// NewFedBuff returns a FedBuff server with buffer size k.
func NewFedBuff(k int, eta float64) *FedBuff {
	if k <= 0 {
		panic("fl: FedBuff buffer size must be positive")
	}
	return &FedBuff{K: k, Eta: eta}
}

// Name implements AsyncStrategy.
func (*FedBuff) Name() string { return "fedbuff" }

// Buffered returns the current buffer occupancy.
func (f *FedBuff) Buffered() int { return len(f.buf) }

// OnReceive implements AsyncStrategy.
func (f *FedBuff) OnReceive(global, _ []float64, u Update) bool {
	f.buf = append(f.buf, u.Delta.Dense())
	f.weights = append(f.weights, StalenessWeight(u.Staleness))
	if len(f.buf) < f.K {
		return false
	}
	var wsum float64
	for _, w := range f.weights {
		wsum += w
	}
	for i, d := range f.buf {
		tensor.Axpy(f.Eta*f.weights[i]/wsum, d, global)
	}
	f.buf = f.buf[:0]
	f.weights = f.weights[:0]
	return true
}
