package fl

import (
	"math"
	"testing"

	"adafl/internal/compress"
)

// malformedUpdates builds the attack shapes a compromised or buggy
// client could ship: out-of-range indices, mismatched arrays, and a
// wrong declared dimension. Before validation was added, the first
// panicked inside Sparse.AddTo and the others silently corrupted or
// crashed the aggregation.
func malformedUpdates(dim int) []Update {
	return []Update{
		{Client: 7, Weight: 1, Delta: &compress.Sparse{
			Dim: dim, Indices: []int32{0, int32(dim + 3)}, Values: []float64{1, 99}}},
		{Client: 8, Weight: 1, Delta: &compress.Sparse{
			Dim: dim, Indices: []int32{0, 1, 2}, Values: []float64{1}}},
		{Client: 9, Weight: 1, Delta: &compress.Sparse{
			Dim: dim + 5, Indices: []int32{0}, Values: []float64{4}}},
		{Client: 10, Weight: 1, Delta: nil},
	}
}

func honestUpdate(dim int) Update {
	return Update{Client: 0, Weight: 3, Delta: &compress.Sparse{
		Dim: dim, Indices: []int32{1, 4}, Values: []float64{0.5, -0.25}}}
}

// TestAggregatorsRejectMalformedUpdates is the regression test for the
// blind-trust bug: each aggregator fed a mix of one honest and several
// malformed updates must neither panic nor let the malformed ones move
// the model — the result must be bitwise identical to aggregating the
// honest update alone.
func TestAggregatorsRejectMalformedUpdates(t *testing.T) {
	const dim = 8
	aggs := []func() Aggregator{
		func() Aggregator { return FedAvg{} },
		func() Aggregator { return NewFedAdam(0.1) },
		func() Aggregator { return NewScaffold(1, 4) },
	}
	for _, mk := range aggs {
		// Reference: honest update only, fresh aggregator state.
		ref := mk()
		wantGlobal := make([]float64, dim)
		for i := range wantGlobal {
			wantGlobal[i] = float64(i) * 0.1
		}
		ref.Apply(wantGlobal, []Update{honestUpdate(dim)})

		got := mk()
		gotGlobal := make([]float64, dim)
		for i := range gotGlobal {
			gotGlobal[i] = float64(i) * 0.1
		}
		mixed := append([]Update{honestUpdate(dim)}, malformedUpdates(dim)...)
		got.Apply(gotGlobal, mixed) // must not panic
		for i := range wantGlobal {
			if gotGlobal[i] != wantGlobal[i] {
				t.Fatalf("%s: malformed updates perturbed the model at %d: %v vs %v",
					got.Name(), i, gotGlobal[i], wantGlobal[i])
			}
		}
	}
}

// TestAggregatorsEmptyRoundIsNoOp pins the empty-selection audit: a
// round where no client delivered (all scores below τ with no fallback,
// every participant evicted, or total deadline loss) must leave the
// global model bitwise untouched and finite — no 0/0 from an empty
// weight sum, for nil, empty, and zero-weight update sets alike.
func TestAggregatorsEmptyRoundIsNoOp(t *testing.T) {
	const dim = 6
	zeroWeight := []Update{{Client: 0, Weight: 0,
		Delta: &compress.Sparse{Dim: dim, Indices: []int32{1}, Values: []float64{2}}}}
	type testCase struct {
		agg     Aggregator
		name    string
		updates []Update
	}
	var cases []testCase
	for _, agg := range []Aggregator{FedAvg{}, NewFedAdam(0.1), NewScaffold(1, 4)} {
		cases = append(cases,
			testCase{agg, "nil", nil},
			testCase{agg, "empty", []Update{}})
	}
	// Zero total weight divides 0/0 only in the weight-normalizing
	// aggregators; SCAFFOLD averages unweighted, so a zero-weight update
	// legitimately moves it and is excluded here.
	cases = append(cases,
		testCase{FedAvg{}, "zeroWeight", zeroWeight},
		testCase{NewFedAdam(0.1), "zeroWeight", zeroWeight})
	for _, tc := range cases {
		agg, name, updates := tc.agg, tc.name, tc.updates
		{
			global := make([]float64, dim)
			for i := range global {
				global[i] = math.Sqrt(float64(i + 1))
			}
			before := append([]float64(nil), global...)
			agg.Apply(global, updates) // must not panic or divide by zero
			for i := range global {
				if global[i] != before[i] {
					t.Fatalf("%s/%s: empty round moved the model at %d: %v vs %v",
						agg.Name(), name, i, global[i], before[i])
				}
			}
		}
	}
}

// TestAggregatorsAllMalformedIsNoOp: a round where every received
// update is malformed must leave the global model untouched.
func TestAggregatorsAllMalformedIsNoOp(t *testing.T) {
	const dim = 6
	global := make([]float64, dim)
	for i := range global {
		global[i] = math.Sqrt(float64(i + 1))
	}
	before := append([]float64(nil), global...)
	FedAvg{}.Apply(global, malformedUpdates(dim))
	for i := range global {
		if global[i] != before[i] {
			t.Fatalf("all-malformed round moved the model at %d", i)
		}
	}
}
