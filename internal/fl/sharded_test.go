package fl

import (
	"math"
	"testing"

	"adafl/internal/compress"
	"adafl/internal/shard"
)

// TestValidUpdatesValidatesOnce is the regression test for the
// double-validation bug: validUpdates used to run a full scan and then,
// on any failure, re-validate every update from scratch — twice the
// screening cost on the hot path. Each update must be validated exactly
// once, in both the all-valid and the mixed case.
func TestValidUpdatesValidatesOnce(t *testing.T) {
	dim := 4
	good := func(v float64) Update {
		return Update{Delta: &compress.Sparse{Dim: dim, Indices: []int32{1}, Values: []float64{v}}, Weight: 1}
	}
	bad := Update{Delta: &compress.Sparse{Dim: dim, Indices: []int32{99}, Values: []float64{1}}, Weight: 1}

	allValid := []Update{good(1), good(2), good(3)}
	before := compress.ValidateCalls()
	kept := validUpdates(dim, allValid)
	if got := compress.ValidateCalls() - before; got != int64(len(allValid)) {
		t.Fatalf("all-valid: %d validations for %d updates", got, len(allValid))
	}
	if len(kept) != 3 {
		t.Fatalf("all-valid: kept %d", len(kept))
	}

	mixed := []Update{good(1), bad, good(2), bad, good(3)}
	before = compress.ValidateCalls()
	kept = validUpdates(dim, mixed)
	if got := compress.ValidateCalls() - before; got != int64(len(mixed)) {
		t.Fatalf("mixed: %d validations for %d updates", got, len(mixed))
	}
	if len(kept) != 3 || kept[0].Delta.Values[0] != 1 || kept[1].Delta.Values[0] != 2 || kept[2].Delta.Values[0] != 3 {
		t.Fatalf("mixed: wrong survivors %+v", kept)
	}
}

// shardApply routes updates through a fresh tree and applies the merged
// partial — the streaming counterpart of agg.Apply for tests.
func shardApply(t *testing.T, pa PartialApplier, global []float64, ups []Update, shards int) {
	t.Helper()
	tree := shard.NewTree(shard.Config{
		Shards: shards, Dim: len(global), Unweighted: pa.PartialUnweighted(),
	})
	defer tree.Close()
	for _, u := range ups {
		tree.Ingest(0, shard.Update{Client: u.Client, Weight: u.Weight, Delta: u.Delta, Ctrl: u.CtrlDelta})
	}
	part, _ := tree.Finish()
	pa.ApplyPartial(global, part)
}

// TestApplyPartialBitwiseS1: for every PartialApplier aggregator, a
// single-shard streaming round moves the global model bit for bit as
// the buffered Apply — the core numerical-equivalence contract.
func TestApplyPartialBitwiseS1(t *testing.T) {
	const dim = 64
	mkUpdates := func(ctrl bool) []Update {
		ups := make([]Update, 9)
		for c := range ups {
			idx := []int32{int32(c), int32((c * 7) % dim)}
			vals := []float64{0.1 * float64(c+1), -0.37 * float64(c+2)}
			ups[c] = Update{
				Client: c, Weight: 0.05 * float64(c+1),
				Delta: &compress.Sparse{Dim: dim, Indices: idx, Values: vals},
			}
			if ctrl {
				cv := make([]float64, dim)
				cv[c] = float64(c) - 3.5
				ups[c].CtrlDelta = cv
			}
		}
		return ups
	}
	cases := []struct {
		name string
		mk   func() PartialApplier
		ctrl bool
	}{
		{"fedavg", func() PartialApplier { return FedAvg{} }, false},
		{"fedadam", func() PartialApplier { return NewFedAdam(0.1) }, false},
		{"scaffold", func() PartialApplier { return NewScaffold(1, 12) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ups := mkUpdates(tc.ctrl)
			buffered := tc.mk()
			streamed := tc.mk()
			gBuf := make([]float64, dim)
			gStr := make([]float64, dim)
			// Two rounds, so stateful aggregators (Adam moments, SCAFFOLD
			// c) must agree bitwise too.
			for round := 0; round < 2; round++ {
				buffered.Apply(gBuf, ups)
				shardApply(t, streamed, gStr, ups, 1)
			}
			for i := range gBuf {
				if gBuf[i] != gStr[i] {
					t.Fatalf("global[%d] differs bitwise: %v vs %v", i, gBuf[i], gStr[i])
				}
			}
			if sc, ok := buffered.(*Scaffold); ok {
				cBuf, cStr := sc.C(dim), streamed.(*Scaffold).C(dim)
				for i := range cBuf {
					if cBuf[i] != cStr[i] {
						t.Fatalf("control variate[%d] differs: %v vs %v", i, cBuf[i], cStr[i])
					}
				}
			}
		})
	}
}

// TestSyncEngineShardedEquivalence runs two identically-seeded
// federations end to end — one buffered, one sharded — and compares the
// global models: bitwise at Shards=1, tolerance at Shards=4.
func TestSyncEngineShardedEquivalence(t *testing.T) {
	run := func(shards int) []float64 {
		fed := newTestFederation(6, true, 77)
		e := NewSyncEngine(fed, FedAvg{}, NewFixedRatePlanner(1, 1, 78), 79)
		e.EvalEvery = 0
		e.Shards = shards
		defer e.Close()
		e.RunRounds(3)
		return e.Global
	}
	buffered := run(0)

	single := run(1)
	for i := range buffered {
		if buffered[i] != single[i] {
			t.Fatalf("Shards=1 not bitwise: global[%d] %v vs %v", i, single[i], buffered[i])
		}
	}

	four := run(4)
	for i := range buffered {
		if d := math.Abs(four[i] - buffered[i]); d > 1e-9*(1+math.Abs(buffered[i])) {
			t.Fatalf("Shards=4 diverged at [%d]: %v vs %v", i, four[i], buffered[i])
		}
	}
}

// TestSyncEngineShardedDeterminism: the sharded engine is reproducible
// run to run for a fixed shard count.
func TestSyncEngineShardedDeterminism(t *testing.T) {
	run := func() []float64 {
		fed := newTestFederation(5, false, 101)
		e := NewSyncEngine(fed, NewScaffold(1, 5), NewFixedRatePlanner(1, 1, 102), 103)
		e.EvalEvery = 0
		e.Shards = 3
		defer e.Close()
		e.RunRounds(2)
		return e.Global
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sharded run not deterministic at [%d]: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestShardedBufferMatchesFedBuff: the streaming buffered-async server
// tracks FedBuff within reassociation tolerance, flush for flush.
func TestShardedBufferMatchesFedBuff(t *testing.T) {
	const dim, k = 32, 4
	fb := NewFedBuff(k, 0.5)
	sb := NewShardedBuffer(k, 0.5, 2)
	defer sb.Close()
	gFB := make([]float64, dim)
	gSB := make([]float64, dim)
	for c := 0; c < 10; c++ {
		u := Update{
			Client: c, Weight: 1,
			Delta: &compress.Sparse{
				Dim: dim, Indices: []int32{int32(c % dim), int32((c * 3) % dim)},
				Values: []float64{float64(c) * 0.2, -0.1},
			},
		}
		aFB := fb.OnReceive(gFB, nil, u)
		aSB := sb.OnReceive(gSB, nil, u)
		if aFB != aSB {
			t.Fatalf("flush timing diverged at update %d: %v vs %v", c, aFB, aSB)
		}
	}
	if fb.Buffered() != sb.Buffered() {
		t.Fatalf("buffer occupancy %d vs %d", fb.Buffered(), sb.Buffered())
	}
	for i := range gFB {
		if d := math.Abs(gFB[i] - gSB[i]); d > 1e-12*(1+math.Abs(gFB[i])) {
			t.Fatalf("global[%d]: %v vs %v", i, gSB[i], gFB[i])
		}
	}
}

// TestShardedBufferMalformedNeverFlushes: a quarantined update still
// counts toward the flush threshold but contributes nothing — and an
// all-quarantined window must not advance the model version.
func TestShardedBufferMalformedNeverFlushes(t *testing.T) {
	const dim, k = 8, 2
	sb := NewShardedBuffer(k, 1, 1)
	defer sb.Close()
	g := make([]float64, dim)
	bad := Update{Client: 0, Delta: &compress.Sparse{Dim: dim + 1, Indices: nil, Values: nil}}
	if sb.OnReceive(g, nil, bad) {
		t.Fatal("advanced below threshold")
	}
	if sb.OnReceive(g, nil, bad) {
		t.Fatal("advanced on an all-quarantined flush window")
	}
	for i, v := range g {
		if v != 0 {
			t.Fatalf("malformed updates moved the model: g[%d]=%v", i, v)
		}
	}
}
