package fl

import (
	"testing"

	"adafl/internal/compress"
)

func TestDownlinkFirstContactIsDense(t *testing.T) {
	d := NewDownlinkCompressor(10, 0)
	global := []float64{1, 2, 3, 4}
	rep, bytes := d.Prepare(0, global, 5)
	if bytes != compress.DenseBytes(4) {
		t.Fatalf("first contact bytes %d", bytes)
	}
	for i := range global {
		if rep[i] != global[i] {
			t.Fatal("first contact replica differs from global")
		}
	}
}

func TestDownlinkDeltaIsSmaller(t *testing.T) {
	d := NewDownlinkCompressor(4, 0)
	dim := 1000
	global := make([]float64, dim)
	d.Prepare(0, global, 1) // dense sync
	for i := range global {
		global[i] = float64(i % 7)
	}
	_, bytes := d.Prepare(0, global, 2)
	if bytes >= compress.DenseBytes(dim) {
		t.Fatalf("delta broadcast %d not below dense %d", bytes, compress.DenseBytes(dim))
	}
}

func TestDownlinkReplicaConverges(t *testing.T) {
	// With a static global model, repeated delta broadcasts must drain the
	// replica lag to zero (error feedback).
	d := NewDownlinkCompressor(10, 0)
	dim := 200
	global := make([]float64, dim)
	d.Prepare(0, global, 0)
	for i := range global {
		global[i] = float64(i)
	}
	prev := d.ReplicaLag(0, global)
	for round := 1; round < 30; round++ {
		d.Prepare(0, global, round)
		lag := d.ReplicaLag(0, global)
		if lag > prev+1e-9 {
			t.Fatalf("round %d: lag grew %v -> %v", round, prev, lag)
		}
		prev = lag
	}
	if prev > 1e-9 {
		t.Fatalf("lag did not drain: %v", prev)
	}
}

func TestDownlinkDenseResync(t *testing.T) {
	d := NewDownlinkCompressor(1e9, 4) // deltas carry almost nothing
	dim := 100
	global := make([]float64, dim)
	d.Prepare(0, global, 0)
	for i := range global {
		global[i] = 5
	}
	// Rounds 1-3: starved deltas; round 4: dense resync.
	for round := 1; round <= 3; round++ {
		d.Prepare(0, global, round)
	}
	if d.ReplicaLag(0, global) == 0 {
		t.Fatal("starved deltas should leave lag")
	}
	_, bytes := d.Prepare(0, global, 4)
	if bytes != compress.DenseBytes(dim) {
		t.Fatalf("round 4 not dense: %d", bytes)
	}
	if d.ReplicaLag(0, global) != 0 {
		t.Fatal("dense resync did not clear lag")
	}
}

func TestSyncEngineWithDownlinkCompressionLearns(t *testing.T) {
	seed := uint64(70)
	dense := newTestFederation(5, true, seed)
	eDense := NewSyncEngine(dense, FedAvg{}, NewFixedRatePlanner(1, 1, seed+1), seed+2)
	eDense.EvalEvery = 5
	eDense.RunRounds(20)

	comp := newTestFederation(5, true, seed)
	eComp := NewSyncEngine(comp, FedAvg{}, NewFixedRatePlanner(1, 1, seed+1), seed+2)
	eComp.Downlink = NewDownlinkCompressor(8, 10)
	eComp.EvalEvery = 5
	eComp.RunRounds(20)

	denseDown := eDense.Hist.Rows[len(eDense.Hist.Rows)-1].DownlinkBytes
	compDown := eComp.Hist.Rows[len(eComp.Hist.Rows)-1].DownlinkBytes
	if compDown >= denseDown/2 {
		t.Fatalf("downlink compression saved too little: %d vs %d", compDown, denseDown)
	}
	if eComp.Hist.FinalAcc() < eDense.Hist.FinalAcc()-0.15 {
		t.Fatalf("downlink compression broke learning: %v vs %v",
			eComp.Hist.FinalAcc(), eDense.Hist.FinalAcc())
	}
}

func TestDownlinkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ratio < 1 accepted")
		}
	}()
	NewDownlinkCompressor(0.5, 0)
}
