package fl

import (
	"adafl/internal/compress"
	"adafl/internal/dataset"
	"adafl/internal/device"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// TrainConfig holds the local-training hyperparameters shared by all
// algorithms, plus the per-algorithm correction switches.
type TrainConfig struct {
	// LocalSteps is the number of mini-batch SGD steps per round.
	LocalSteps int
	// BatchSize is the mini-batch size.
	BatchSize int
	// LR and Momentum configure the client SGD optimizer.
	LR, Momentum float64
	// ProxMu, when nonzero, adds FedProx's proximal term
	// (µ/2)‖w − w_global‖² to the local objective.
	ProxMu float64
	// Scaffold enables SCAFFOLD control-variate correction. The control
	// variate c_i⁺ = c_i − c + (w_global − w_local)/(K·η) is derived for
	// plain SGD; run SCAFFOLD clients with Momentum 0 or the variates
	// overestimate the local gradient by ~1/(1−m) and training diverges.
	Scaffold bool
}

// Validate panics on unusable configurations.
func (c TrainConfig) Validate() {
	if c.LocalSteps <= 0 || c.BatchSize <= 0 || c.LR <= 0 {
		panic("fl: TrainConfig needs positive LocalSteps, BatchSize and LR")
	}
	if c.ProxMu != 0 && c.Scaffold {
		panic("fl: FedProx and SCAFFOLD corrections are mutually exclusive")
	}
}

// Client is one federated participant: a data shard, a local model and
// optimizer state, a device profile, and an uplink codec.
type Client struct {
	ID     int
	Data   *dataset.Dataset
	Model  *nn.Model
	Cfg    TrainConfig
	Device device.Profile
	// Codec compresses the uplink delta; Identity by default.
	Codec compress.Codec

	// Ctrl is the SCAFFOLD client control variate c_i (lazily allocated).
	Ctrl []float64
	// LastDelta caches the most recent raw local delta; AdaFL's utility
	// score compares it against the previous global delta.
	LastDelta []float64

	iter *dataset.Iterator
	opt  *nn.SGD
	rng  *stats.RNG
}

// NewClient constructs a client with its own optimizer and batch iterator.
func NewClient(id int, data *dataset.Dataset, model *nn.Model, cfg TrainConfig,
	dev device.Profile, rng *stats.RNG) *Client {
	cfg.Validate()
	c := &Client{
		ID: id, Data: data, Model: model, Cfg: cfg, Device: dev,
		Codec: compress.Identity{}, rng: rng,
	}
	c.opt = nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	if data.Len() > 0 {
		c.iter = dataset.NewIterator(data, cfg.BatchSize, rng.Split())
	}
	return c
}

// TrainRound loads the global parameters, runs LocalSteps of mini-batch
// SGD (with the configured FedProx/SCAFFOLD corrections), and returns the
// raw model delta Δ = w_local − w_global. scaffoldC is the server control
// variate (nil unless Cfg.Scaffold). The delta is also cached in LastDelta.
//
// The returned ctrlDelta is SCAFFOLD's c_iⁿᵉʷ − c_i (nil otherwise); the
// client's own control variate is updated in place.
func (c *Client) TrainRound(global []float64, scaffoldC []float64) (delta, ctrlDelta []float64) {
	if c.iter == nil {
		// A dataless client contributes nothing.
		zero := make([]float64, len(global))
		c.LastDelta = zero
		return zero, nil
	}
	c.Model.SetParamVector(global)
	// Cfg is mutable between rounds (experiments flip ProxMu/Scaffold/LR
	// after construction); keep the optimizer in sync.
	c.opt.LR = c.Cfg.LR
	c.opt.Momentum = c.Cfg.Momentum
	if c.Cfg.Scaffold && c.Ctrl == nil {
		c.Ctrl = make([]float64, len(global))
	}
	steps := c.Cfg.LocalSteps
	for s := 0; s < steps; s++ {
		x, labels := c.iter.Next()
		c.Model.ZeroGrads()
		c.Model.TrainBatch(x, labels)
		if c.Cfg.ProxMu != 0 {
			c.applyProxCorrection(global)
		}
		if c.Cfg.Scaffold {
			c.applyScaffoldCorrection(scaffoldC)
		}
		c.opt.Step(c.Model)
	}
	local := c.Model.ParamVector()
	delta = make([]float64, len(global))
	tensor.SubVec(delta, local, global)
	c.LastDelta = delta

	if c.Cfg.Scaffold {
		// c_i⁺ = c_i − c + (w_global − w_local)/(K·η)  (SCAFFOLD option II)
		ctrlDelta = make([]float64, len(global))
		scale := 1 / (float64(steps) * c.Cfg.LR)
		for i := range ctrlDelta {
			newCi := c.Ctrl[i] - scaffoldC[i] - delta[i]*scale
			ctrlDelta[i] = newCi - c.Ctrl[i]
			c.Ctrl[i] = newCi
		}
	}
	return delta, ctrlDelta
}

// applyProxCorrection adds µ(w − w_global) to the accumulated gradients.
func (c *Client) applyProxCorrection(global []float64) {
	params := c.Model.ParamVector()
	grads := c.Model.GradVector()
	for i := range grads {
		grads[i] += c.Cfg.ProxMu * (params[i] - global[i])
	}
	c.setGradVector(grads)
}

// applyScaffoldCorrection adds (c − c_i) to the accumulated gradients.
func (c *Client) applyScaffoldCorrection(serverC []float64) {
	grads := c.Model.GradVector()
	for i := range grads {
		grads[i] += serverC[i] - c.Ctrl[i]
	}
	c.setGradVector(grads)
}

// setGradVector writes a flat gradient vector back into the model's
// gradient tensors (the inverse of GradVector).
func (c *Client) setGradVector(v []float64) {
	off := 0
	for _, l := range c.Model.Layers {
		for _, g := range l.Grads() {
			off += copy(g.Data, v[off:off+g.Size()])
		}
	}
}

// TrainFLOPs estimates the arithmetic cost of one TrainRound, which the
// engines convert to simulated compute time via the device profile.
func (c *Client) TrainFLOPs() float64 {
	samples := c.Cfg.LocalSteps * c.Cfg.BatchSize
	if c.Data.Len() == 0 {
		return 0
	}
	return c.Model.FLOPsPerSample() * float64(samples)
}

// ComputeSeconds returns the simulated duration of one local round on this
// client's device.
func (c *Client) ComputeSeconds() float64 {
	samples := c.Cfg.LocalSteps * c.Cfg.BatchSize
	if c.Data.Len() == 0 {
		return 0
	}
	return c.Device.TrainSeconds(c.Model.FLOPsPerSample(), samples)
}

// EncodeDelta compresses a raw delta at the requested ratio using the
// client's codec.
func (c *Client) EncodeDelta(delta []float64, ratio float64) *compress.Sparse {
	return c.Codec.Encode(delta, ratio)
}
