package fl

import (
	"adafl/internal/compress"
	"adafl/internal/tensor"
)

// DownlinkCompressor extends the framework beyond the paper: the paper's
// AdaFL compresses only client→server gradients, while the server still
// broadcasts the dense global model every round. This compressor tracks a
// per-client replica of what each client last received and ships only the
// top-k of the replica's lag (global − replica), with a periodic dense
// resync. The untransmitted remainder stays in the lag — server-side
// error feedback — so replicas converge to the global model over rounds.
//
// Clients then train from their (slightly stale) replica instead of the
// exact global model, which is precisely the approximation real downlink
// compression introduces.
type DownlinkCompressor struct {
	// Ratio is the byte-level compression target for delta broadcasts.
	Ratio float64
	// DenseEvery forces a full-model broadcast every k rounds (and on a
	// client's first contact). 0 disables resync.
	DenseEvery int

	replicas map[int][]float64
}

// NewDownlinkCompressor returns a compressor with the given delta ratio
// and dense resync period.
func NewDownlinkCompressor(ratio float64, denseEvery int) *DownlinkCompressor {
	if ratio < 1 {
		panic("fl: downlink ratio below 1")
	}
	return &DownlinkCompressor{Ratio: ratio, DenseEvery: denseEvery, replicas: map[int][]float64{}}
}

// Prepare returns the parameter vector the client will actually receive
// this round and the broadcast's wire size. The returned slice must be
// treated as read-only by the caller.
func (d *DownlinkCompressor) Prepare(client int, global []float64, round int) (replica []float64, wireBytes int) {
	rep, ok := d.replicas[client]
	dense := !ok || (d.DenseEvery > 0 && round%d.DenseEvery == 0)
	if dense {
		rep = tensor.CopyVec(global)
		d.replicas[client] = rep
		return rep, compress.DenseBytes(len(global))
	}
	lag := make([]float64, len(global))
	tensor.SubVec(lag, global, rep)
	msg := compress.SelectTopK(lag, compress.KForRatio(len(global), d.Ratio))
	msg.AddTo(rep, 1)
	return rep, msg.WireBytes()
}

// ReplicaLag returns ‖global − replica‖ for a client (0 if unknown), for
// diagnostics and tests.
func (d *DownlinkCompressor) ReplicaLag(client int, global []float64) float64 {
	rep, ok := d.replicas[client]
	if !ok {
		return 0
	}
	diff := make([]float64, len(global))
	tensor.SubVec(diff, global, rep)
	return tensor.Norm2(diff)
}
