package fl

import (
	"math"
	"runtime"
	"sync"

	"adafl/internal/compress"
	"adafl/internal/netsim"
	"adafl/internal/obs"
	"adafl/internal/shard"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// RoundPlanner decides, at the start of each synchronous round, which
// clients participate and at what uplink compression ratio. AdaFL's
// adaptive node selection implements this interface (internal/core); the
// baselines use FixedRatePlanner.
type RoundPlanner interface {
	Plan(round int, e *SyncEngine) []Participation
}

// SyncEngine runs the synchronous protocol: every round the server pushes
// the global model to the planned participants, waits for their updates
// subject to a maximum wait time (late or lost updates are dropped, as in
// §III-A), aggregates, and advances the simulated clock by the round
// duration T_sync = max_i(Ψ_i + Υ_i^u + Υ_i^d).
type SyncEngine struct {
	Fed     *Federation
	Agg     Aggregator
	Planner RoundPlanner
	// MaxWait is the server's round deadline in seconds; 0 means the
	// server waits for the slowest participant.
	MaxWait float64
	// EvalEvery evaluates the global model every k rounds (default 1).
	EvalEvery int
	// Downlink, when non-nil, compresses server→client broadcasts (see
	// DownlinkCompressor); clients then train from per-client replicas.
	Downlink *DownlinkCompressor
	// Metrics, when non-nil, receives per-round gauges (accuracy,
	// participant counts, cumulative bytes). Nil disables metrics.
	Metrics *obs.Registry
	// Shards, when positive and Agg implements PartialApplier, streams
	// accepted updates through an internal/shard aggregation tree
	// instead of handing the aggregator a buffered slice. Shards=1 is
	// bitwise identical to the buffered path; Shards>1 trades a fixed
	// summation reassociation (still deterministic per shard count) for
	// parallel folding. Call Close when done with a sharded engine.
	Shards int
	// ShardQueueDepth overrides the per-shard ingest queue depth
	// (default shard.DefaultQueueDepth).
	ShardQueueDepth int
	// OnUpload, when non-nil, observes each accepted upload's (client,
	// wire bytes) in plan order — the codec negotiator's deterministic
	// byte-history feed.
	OnUpload func(client, bytes int)

	// Global is the flat global parameter vector.
	Global []float64
	// LastGlobalDelta is ĝ, the aggregate movement of the global model in
	// the previous round — the reference vector for utility scores.
	LastGlobalDelta []float64
	// Weights caches the data-proportion weights n_i/n.
	Weights []float64
	// ClientUpdates counts accepted updates per client.
	ClientUpdates []int
	// Hist accumulates per-round statistics.
	Hist History

	round              int
	now                float64
	upBytes, downBytes int64
	updates            int
	rng                *stats.RNG
	tree               *shard.Tree
}

// NewSyncEngine initialises the global model from the federation's model
// factory and returns a ready engine.
func NewSyncEngine(fed *Federation, agg Aggregator, planner RoundPlanner, seed uint64) *SyncEngine {
	global := fed.NewModel().ParamVector()
	return &SyncEngine{
		Fed: fed, Agg: agg, Planner: planner, EvalEvery: 1,
		Global:          global,
		LastGlobalDelta: make([]float64, len(global)),
		Weights:         fed.Weights(),
		ClientUpdates:   make([]int, len(fed.Clients)),
		rng:             stats.NewRNG(seed),
	}
}

// Round returns the index of the next round to run.
func (e *SyncEngine) Round() int { return e.round }

// Now returns the simulated time.
func (e *SyncEngine) Now() float64 { return e.now }

// TotalUplinkBytes returns cumulative uplink volume.
func (e *SyncEngine) TotalUplinkBytes() int64 { return e.upBytes }

// TotalUpdates returns the number of accepted client updates.
func (e *SyncEngine) TotalUpdates() int { return e.updates }

// RunRounds executes n rounds.
func (e *SyncEngine) RunRounds(n int) {
	for i := 0; i < n; i++ {
		e.RunRound()
	}
}

// RunRound executes one synchronous round.
func (e *SyncEngine) RunRound() {
	parts := e.Planner.Plan(e.round, e)
	dim := len(e.Global)

	var scaffC []float64
	if sc, ok := e.Agg.(*Scaffold); ok {
		scaffC = sc.C(dim)
	}

	// Phase 1 (parallel): every planned client's round is independent —
	// its own model, optimizer, codec and RNG streams. Downlink replica
	// preparation stays serial (shared compressor state); everything else
	// fans out across CPUs. Results are reduced in plan order below, so
	// the round is bit-identical to a serial execution.
	type clientResult struct {
		dlBytes, ulBytes int
		dlLost, ulLost   bool
		total            float64
		msg              *compress.Sparse
		ctrl             []float64
	}
	results := make([]clientResult, len(parts))
	replicas := make([][]float64, len(parts))
	for i, p := range parts {
		replicas[i] = e.Global
		if e.Downlink != nil {
			rep, dlBytes := e.Downlink.Prepare(p.Client, e.Global, e.round)
			replicas[i] = rep
			results[i].dlBytes = dlBytes
		} else {
			results[i].dlBytes = compress.DenseBytes(dim)
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, p := range parts {
		i, p := i, p
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r := &results[i]
			c := e.Fed.Clients[p.Client]
			var dlDur float64
			dlDur, r.dlLost = e.Fed.Net.Transfer(c.ID, netsim.Downlink, r.dlBytes, e.now)
			if r.dlLost {
				return
			}
			delta, ctrl := c.TrainRound(replicas[i], scaffC)
			r.ctrl = ctrl
			if p.Codec != nil {
				r.msg = p.Codec.Encode(delta, p.Ratio)
			} else {
				r.msg = c.EncodeDelta(delta, p.Ratio)
			}
			r.ulBytes = r.msg.WireBytes()
			var ulDur float64
			ulDur, r.ulLost = e.Fed.Net.Transfer(c.ID, netsim.Uplink, r.ulBytes, e.now)
			r.total = dlDur + c.ComputeSeconds() + ulDur
		}()
	}
	wg.Wait()

	// Phase 2 (serial, plan order): deadlines, byte accounting, update set.
	var updates []Update
	roundDur := 0.0
	deadlineHit := false
	for i, p := range parts {
		r := &results[i]
		e.downBytes += int64(r.dlBytes)
		if r.dlLost {
			deadlineHit = true
			continue
		}
		e.upBytes += int64(r.ulBytes) // bandwidth is spent even on loss
		if r.ulLost {
			deadlineHit = true
			continue
		}
		if e.MaxWait > 0 && r.total > e.MaxWait {
			deadlineHit = true // server stops waiting; update dropped
			continue
		}
		if r.total > roundDur {
			roundDur = r.total
		}
		u := Update{Client: p.Client, Delta: r.msg, Weight: e.Weights[p.Client], CtrlDelta: r.ctrl}
		if r.ctrl != nil {
			// SCAFFOLD ships the control-variate delta too: double uplink.
			e.upBytes += int64(compress.DenseBytes(dim))
		}
		updates = append(updates, u)
		e.ClientUpdates[p.Client]++
		e.updates++
		if e.OnUpload != nil {
			e.OnUpload(p.Client, r.ulBytes)
		}
	}
	if deadlineHit && e.MaxWait > 0 && e.MaxWait > roundDur {
		roundDur = e.MaxWait
	}

	before := tensor.CopyVec(e.Global)
	e.aggregate(updates)
	tensor.SubVec(e.LastGlobalDelta, e.Global, before)

	e.now += roundDur
	e.round++

	row := RoundStats{
		Round: e.round, Time: e.now,
		TestAcc: math.NaN(), TestLoss: math.NaN(),
		Participants: len(parts), Received: len(updates),
		UplinkBytes: e.upBytes, DownlinkBytes: e.downBytes,
		Updates: e.updates,
	}
	if e.EvalEvery > 0 && e.round%e.EvalEvery == 0 {
		row.TestAcc, row.TestLoss = e.Fed.Evaluate(e.Global)
	}
	e.Hist.Add(row)
	e.recordMetrics(row)
}

// aggregate applies the round's accepted updates to the global model —
// through the shard tree when sharding is enabled and the aggregator
// can consume partials, through Aggregator.Apply otherwise. Ingest runs
// in the serial plan-order loop above, so per-shard fold order is
// deterministic and the Shards=1 result is bitwise the buffered one.
// Malformed updates are quarantined by the shard workers in place of
// the buffered path's validUpdates screen.
func (e *SyncEngine) aggregate(updates []Update) {
	pa, ok := e.Agg.(PartialApplier)
	if e.Shards <= 0 || !ok {
		e.Agg.Apply(e.Global, updates)
		return
	}
	if e.tree == nil {
		e.tree = shard.NewTree(shard.Config{
			Shards:     e.Shards,
			Dim:        len(e.Global),
			QueueDepth: e.ShardQueueDepth,
			Unweighted: pa.PartialUnweighted(),
			Metrics:    e.Metrics,
		})
	}
	for _, u := range updates {
		e.tree.Ingest(e.round, shard.Update{
			Client: u.Client, Weight: u.Weight, Delta: u.Delta, Ctrl: u.CtrlDelta,
		})
	}
	part, _ := e.tree.Finish()
	pa.ApplyPartial(e.Global, part)
}

// Close tears down the shard ingest workers, if any. Engines running
// with Shards=0 need not call it.
func (e *SyncEngine) Close() {
	if e.tree != nil {
		e.tree.Close()
		e.tree = nil
	}
}

// recordMetrics mirrors the history row into the metrics registry; a nil
// registry hands out nil instruments, so the whole body is no-ops.
func (e *SyncEngine) recordMetrics(row RoundStats) {
	m := e.Metrics
	m.Counter("adafl_rounds_total").Inc()
	m.Gauge("adafl_round_clients").Set(float64(row.Participants))
	m.Gauge("adafl_round_received").Set(float64(row.Received))
	m.Gauge("adafl_sim_seconds").Set(row.Time)
	if !math.IsNaN(row.TestAcc) {
		m.Gauge("adafl_round_accuracy").Set(row.TestAcc)
	}
}

// FixedRatePlanner implements the baselines' client sampling: every round
// it picks ⌈Rate·N⌉ clients uniformly at random and requests ratio Ratio
// (1 = uncompressed) from each.
type FixedRatePlanner struct {
	Rate  float64
	Ratio float64
	rng   *stats.RNG
}

// NewFixedRatePlanner returns a planner sampling the given participation
// rate with a fixed compression ratio.
func NewFixedRatePlanner(rate, ratio float64, seed uint64) *FixedRatePlanner {
	if rate <= 0 || rate > 1 {
		panic("fl: participation rate out of (0,1]")
	}
	if ratio < 1 {
		ratio = 1
	}
	return &FixedRatePlanner{Rate: rate, Ratio: ratio, rng: stats.NewRNG(seed)}
}

// Plan implements RoundPlanner.
func (p *FixedRatePlanner) Plan(_ int, e *SyncEngine) []Participation {
	n := len(e.Fed.Clients)
	k := int(math.Ceil(p.Rate * float64(n)))
	perm := p.rng.Perm(n)
	out := make([]Participation, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, Participation{Client: idx, Ratio: p.Ratio})
	}
	return out
}

// UnreliablePlanner reproduces the empirical study's degraded clients
// (Figure 1): the clients in Unreliable are either excluded entirely
// (ModeDropout — bandwidth too low to ever deliver) or deliver only every
// Period-th round (ModeDataLoss — high latency makes them miss alternate
// rounds). Reliable clients always participate.
type UnreliablePlanner struct {
	Unreliable map[int]bool
	Mode       UnreliableMode
	// Period is the delivery period for ModeDataLoss (2 = every other
	// round, as in the paper's setup).
	Period int
}

// UnreliableMode selects the degradation model.
type UnreliableMode int

// Degradation modes for UnreliablePlanner.
const (
	// ModeDropout removes unreliable clients' updates entirely.
	ModeDropout UnreliableMode = iota
	// ModeDataLoss lets unreliable clients deliver every Period-th round.
	ModeDataLoss
)

// Plan implements RoundPlanner.
func (p *UnreliablePlanner) Plan(round int, e *SyncEngine) []Participation {
	period := p.Period
	if period <= 0 {
		period = 2
	}
	var out []Participation
	for i := range e.Fed.Clients {
		if p.Unreliable[i] {
			if p.Mode == ModeDropout {
				continue
			}
			if round%period != 0 {
				continue
			}
		}
		out = append(out, Participation{Client: i, Ratio: 1})
	}
	return out
}
