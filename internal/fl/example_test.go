package fl_test

import (
	"fmt"

	"adafl/internal/compress"
	"adafl/internal/fl"
)

// ExampleFedAvg shows weighted model averaging over two client updates.
func ExampleFedAvg() {
	global := []float64{0, 0}
	updates := []fl.Update{
		{Delta: compress.NewSparseDense([]float64{1, 0}), Weight: 0.75},
		{Delta: compress.NewSparseDense([]float64{0, 1}), Weight: 0.25},
	}
	fl.FedAvg{}.Apply(global, updates)
	fmt.Println(global)
	// Output: [0.75 0.25]
}

// ExampleFedAsync_StalenessWeight shows the polynomial staleness decay
// that down-weights updates trained on outdated global models.
func ExampleFedAsync_StalenessWeight() {
	f := fl.FedAsync{Alpha: 0.6, Decay: 0.5}
	for _, s := range []int{0, 3, 8} {
		fmt.Printf("staleness %d -> %.2f\n", s, f.StalenessWeight(s))
	}
	// Output:
	// staleness 0 -> 0.60
	// staleness 3 -> 0.30
	// staleness 8 -> 0.20
}

// ExampleDownlinkCompressor shows replica-delta broadcasting: the first
// contact is dense, later broadcasts ship only the top of the replica lag.
func ExampleDownlinkCompressor() {
	d := fl.NewDownlinkCompressor(4, 0)
	global := make([]float64, 1000)

	_, first := d.Prepare(0, global, 0)
	global[7] = 1.5 // the model moves
	_, second := d.Prepare(0, global, 1)
	fmt.Printf("first contact: %d bytes, delta round: %d bytes\n", first, second)
	fmt.Printf("replica lag after delta: %.1f\n", d.ReplicaLag(0, global))
	// Output:
	// first contact: 4008 bytes, delta round: 1008 bytes
	// replica lag after delta: 0.0
}
