package fl

import (
	"math"

	"adafl/internal/compress"
	"adafl/internal/netsim"
	"adafl/internal/obs"
	"adafl/internal/tensor"
)

// AsyncGate is consulted after a client finishes local training, before it
// uploads. It can suppress the upload (the client idles and re-downloads
// later) and chooses the compression ratio. AdaFL's utility gating
// implements this; the baselines use AlwaysUpload.
type AsyncGate interface {
	Decide(e *AsyncEngine, client int, delta []float64) (upload bool, ratio float64)
}

// AlwaysUpload is the baseline gate: every update is transmitted densely.
type AlwaysUpload struct{}

// Decide implements AsyncGate.
func (AlwaysUpload) Decide(*AsyncEngine, int, []float64) (bool, float64) { return true, 1 }

// AsyncEngine runs the asynchronous protocol as a discrete-event
// simulation: each client independently cycles download → train → upload,
// and the server processes arrivals one at a time through an AsyncStrategy
// (FedAsync mixing, FedBuff buffering, or AdaFL's fully-async apply).
type AsyncEngine struct {
	Fed   *Federation
	Strat AsyncStrategy
	Gate  AsyncGate

	// Global is the flat global parameter vector; Version counts applied
	// global model advances.
	Global  []float64
	Version int
	// LastGlobalDelta is ĝ for utility scoring, updated on each advance.
	LastGlobalDelta []float64
	Weights         []float64
	ClientUpdates   []int
	Hist            History

	// Inactive marks clients that never run (async dropout experiments:
	// clients whose bandwidth can never deliver an update).
	Inactive map[int]bool

	// EvalInterval evaluates the global model every so many simulated
	// seconds (default 1.0).
	EvalInterval float64
	// Metrics, when non-nil, receives evaluation-time gauges (accuracy,
	// versions, update counts). Nil disables metrics.
	Metrics *obs.Registry
	// SkipIdle is how long a gated-off client waits before re-downloading.
	SkipIdle float64

	queue      *netsim.EventQueue
	downloaded [][]float64 // per-client global snapshot at download
	downVer    []int       // per-client Version at download
	upBytes    int64
	downBytes  int64
	updates    int // updates received by the server
	staleSum   int
	deadline   float64
}

// NewAsyncEngine builds an asynchronous engine over the federation.
func NewAsyncEngine(fed *Federation, strat AsyncStrategy, gate AsyncGate) *AsyncEngine {
	global := fed.NewModel().ParamVector()
	n := len(fed.Clients)
	return &AsyncEngine{
		Fed: fed, Strat: strat, Gate: gate,
		Global:          global,
		LastGlobalDelta: make([]float64, len(global)),
		Weights:         fed.Weights(),
		ClientUpdates:   make([]int, n),
		EvalInterval:    1,
		SkipIdle:        0.5,
		queue:           netsim.NewEventQueue(),
		downloaded:      make([][]float64, n),
		downVer:         make([]int, n),
	}
}

// Now returns the simulated time.
func (e *AsyncEngine) Now() float64 { return e.queue.Now() }

// TotalUplinkBytes returns cumulative uplink volume.
func (e *AsyncEngine) TotalUplinkBytes() int64 { return e.upBytes }

// TotalUpdates returns the number of updates the server received.
func (e *AsyncEngine) TotalUpdates() int { return e.updates }

// Run simulates until the given simulated-time horizon.
func (e *AsyncEngine) Run(horizon float64) {
	e.deadline = horizon
	for i := range e.Fed.Clients {
		if e.Inactive[i] {
			continue
		}
		e.startCycle(i, 0)
	}
	for t := e.EvalInterval; t <= horizon; t += e.EvalInterval {
		at := t
		e.queue.Schedule(at, func() { e.evaluate(at) })
	}
	e.queue.RunUntil(horizon)
}

// startCycle begins a client's download at time t.
func (e *AsyncEngine) startCycle(client int, t float64) {
	if t > e.deadline {
		return
	}
	dim := len(e.Global)
	dlDur, dlLost := e.Fed.Net.Transfer(client, netsim.Downlink, compress.DenseBytes(dim), t)
	e.downBytes += int64(compress.DenseBytes(dim))
	if dlLost {
		// The model never arrived; retry after the wasted transfer time.
		e.queue.Schedule(t+dlDur+e.SkipIdle, func() { e.startCycle(client, e.queue.Now()) })
		return
	}
	e.queue.Schedule(t+dlDur, func() { e.onDownloaded(client) })
}

// onDownloaded snapshots the global model for the client and schedules the
// end of its local training.
func (e *AsyncEngine) onDownloaded(client int) {
	c := e.Fed.Clients[client]
	e.downloaded[client] = tensor.CopyVec(e.Global)
	e.downVer[client] = e.Version
	compDur := c.ComputeSeconds()
	e.queue.Schedule(e.queue.Now()+compDur, func() { e.onTrained(client) })
}

// onTrained runs the actual local training, consults the gate, and either
// uploads or idles.
func (e *AsyncEngine) onTrained(client int) {
	c := e.Fed.Clients[client]
	delta, _ := c.TrainRound(e.downloaded[client], nil)
	now := e.queue.Now()
	upload, ratio := e.Gate.Decide(e, client, delta)
	if !upload {
		e.queue.Schedule(now+e.SkipIdle, func() { e.startCycle(client, e.queue.Now()) })
		return
	}
	msg := c.EncodeDelta(delta, ratio)
	ulDur, ulLost := e.Fed.Net.Transfer(client, netsim.Uplink, msg.WireBytes(), now)
	e.upBytes += int64(msg.WireBytes())
	staleAt := e.downVer[client]
	if !ulLost {
		e.queue.Schedule(now+ulDur, func() { e.onReceive(client, msg, staleAt) })
	}
	// The client is busy until its upload finishes either way.
	e.queue.Schedule(now+ulDur, func() { e.startCycle(client, e.queue.Now()) })
}

// onReceive applies one arriving update at the server.
func (e *AsyncEngine) onReceive(client int, msg *compress.Sparse, downloadVersion int) {
	e.updates++
	e.ClientUpdates[client]++
	u := Update{
		Client:    client,
		Delta:     msg,
		Weight:    e.Weights[client],
		Staleness: e.Version - downloadVersion,
	}
	e.staleSum += u.Staleness
	before := tensor.CopyVec(e.Global)
	advanced := e.Strat.OnReceive(e.Global, e.downloaded[client], u)
	if advanced {
		e.Version++
		tensor.SubVec(e.LastGlobalDelta, e.Global, before)
	}
}

// evaluate records a history row at simulated time t.
func (e *AsyncEngine) evaluate(t float64) {
	acc, loss := e.Fed.Evaluate(e.Global)
	e.Hist.Add(RoundStats{
		Round: e.Version, Time: t,
		TestAcc: acc, TestLoss: loss,
		Received:    e.updates,
		UplinkBytes: e.upBytes, DownlinkBytes: e.downBytes,
		Updates: e.updates,
	})
	m := e.Metrics
	m.Gauge("adafl_model_version").Set(float64(e.Version))
	m.Gauge("adafl_round_received").Set(float64(e.updates))
	m.Gauge("adafl_sim_seconds").Set(t)
	if !math.IsNaN(acc) {
		m.Gauge("adafl_round_accuracy").Set(acc)
	}
}

// MeanStaleness returns the average staleness of the updates the server
// received so far.
func (e *AsyncEngine) MeanStaleness() float64 {
	if e.updates == 0 {
		return 0
	}
	return float64(e.staleSum) / float64(e.updates)
}
