package fl

import (
	"math"
	"strings"
	"testing"

	"adafl/internal/compress"
	"adafl/internal/dataset"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// newTestFederation builds a small, fast federation: synthetic MNIST 16×16,
// an image MLP, IID partition over numClients, uniform WiFi-class links.
func newTestFederation(numClients int, iid bool, seed uint64) *Federation {
	ds := dataset.SynthMNIST(800, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	var parts []*dataset.Dataset
	if iid {
		parts = dataset.PartitionIID(train, numClients, seed+2)
	} else {
		parts = dataset.PartitionShards(train, numClients, 2, seed+2)
	}
	net := netsim.UniformNetwork(numClients, netsim.WiFiLink, seed+3)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+4))
	}
	cfg := TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	return NewFederation(parts, test, net, newModel, cfg, seed+5)
}

func TestFederationWeightsSumToOne(t *testing.T) {
	f := newTestFederation(5, true, 1)
	sum := 0.0
	for _, w := range f.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestClientTrainRoundProducesDelta(t *testing.T) {
	f := newTestFederation(3, true, 2)
	c := f.Clients[0]
	global := f.NewModel().ParamVector()
	delta, ctrl := c.TrainRound(global, nil)
	if ctrl != nil {
		t.Fatal("non-scaffold client returned control delta")
	}
	if norm(delta) == 0 {
		t.Fatal("training produced zero delta")
	}
	if &c.LastDelta[0] != &delta[0] {
		t.Fatal("LastDelta not cached")
	}
	// Local model must equal global + delta.
	local := c.Model.ParamVector()
	for i := range local {
		if math.Abs(local[i]-global[i]-delta[i]) > 1e-12 {
			t.Fatal("delta inconsistent with local model")
		}
	}
}

func TestFedProxShrinksDelta(t *testing.T) {
	seed := uint64(3)
	plain := newTestFederation(1, true, seed)
	prox := newTestFederation(1, true, seed)
	prox.Clients[0].Cfg.ProxMu = 1.0 // heavy proximal pull
	global := plain.NewModel().ParamVector()
	dPlain, _ := plain.Clients[0].TrainRound(global, nil)
	dProx, _ := prox.Clients[0].TrainRound(global, nil)
	if norm(dProx) >= norm(dPlain) {
		t.Fatalf("proximal term did not shrink delta: %v vs %v", norm(dProx), norm(dPlain))
	}
}

func TestScaffoldControlVariates(t *testing.T) {
	f := newTestFederation(2, false, 4)
	for _, c := range f.Clients {
		c.Cfg.Scaffold = true
	}
	c := f.Clients[0]
	global := f.NewModel().ParamVector()
	serverC := make([]float64, len(global))
	delta, ctrl := c.TrainRound(global, serverC)
	if ctrl == nil {
		t.Fatal("scaffold client returned nil control delta")
	}
	if norm(c.Ctrl) == 0 {
		t.Fatal("client control variate not updated")
	}
	// c_i⁺ = −Δ/(K·η) when starting from c_i = c = 0.
	scale := 1 / (float64(c.Cfg.LocalSteps) * c.Cfg.LR)
	for i := range delta {
		want := -delta[i] * scale
		if math.Abs(c.Ctrl[i]-want) > 1e-9 {
			t.Fatalf("control variate mismatch at %d: %v vs %v", i, c.Ctrl[i], want)
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("prox+scaffold accepted")
		}
	}()
	TrainConfig{LocalSteps: 1, BatchSize: 1, LR: 0.1, ProxMu: 0.1, Scaffold: true}.Validate()
}

func TestFedAvgKnownValues(t *testing.T) {
	global := []float64{0, 0}
	updates := []Update{
		{Delta: compress.NewSparseDense([]float64{1, 0}), Weight: 0.75},
		{Delta: compress.NewSparseDense([]float64{0, 1}), Weight: 0.25},
	}
	FedAvg{}.Apply(global, updates)
	if math.Abs(global[0]-0.75) > 1e-12 || math.Abs(global[1]-0.25) > 1e-12 {
		t.Fatalf("FedAvg result %v", global)
	}
}

func TestFedAvgEmptyRoundNoChange(t *testing.T) {
	global := []float64{1, 2}
	FedAvg{}.Apply(global, nil)
	if global[0] != 1 || global[1] != 2 {
		t.Fatal("empty aggregation changed model")
	}
}

func TestFedAdamMovesAlongDelta(t *testing.T) {
	agg := NewFedAdam(0.1)
	global := []float64{0, 0}
	updates := []Update{{Delta: compress.NewSparseDense([]float64{1, -1}), Weight: 1}}
	agg.Apply(global, updates)
	if global[0] <= 0 || global[1] >= 0 {
		t.Fatalf("FedAdam moved wrong direction: %v", global)
	}
}

func TestScaffoldAggregatorUpdatesC(t *testing.T) {
	agg := NewScaffold(1, 4)
	global := []float64{0, 0}
	updates := []Update{
		{Delta: compress.NewSparseDense([]float64{2, 0}), Weight: 0.5, CtrlDelta: []float64{1, 1}},
		{Delta: compress.NewSparseDense([]float64{0, 2}), Weight: 0.5, CtrlDelta: []float64{1, -1}},
	}
	agg.Apply(global, updates)
	// Unweighted mean of deltas: (1, 1).
	if math.Abs(global[0]-1) > 1e-12 || math.Abs(global[1]-1) > 1e-12 {
		t.Fatalf("scaffold global %v", global)
	}
	// c += |S|/N · mean(Δc) = (2/4)·(1, 0) = (0.5, 0).
	c := agg.C(2)
	if math.Abs(c[0]-0.5) > 1e-12 || math.Abs(c[1]) > 1e-12 {
		t.Fatalf("scaffold c %v", c)
	}
}

func TestFedAsyncStalenessWeight(t *testing.T) {
	f := FedAsync{Alpha: 0.6, Decay: 0.5}
	if w := f.StalenessWeight(0); math.Abs(w-0.6) > 1e-12 {
		t.Fatalf("fresh weight %v", w)
	}
	if f.StalenessWeight(3) >= f.StalenessWeight(1) {
		t.Fatal("staleness weight not decreasing")
	}
	nodecay := FedAsync{Alpha: 0.6}
	if nodecay.StalenessWeight(10) != 0.6 {
		t.Fatal("decay-free weight changed")
	}
}

func TestFedAsyncMixing(t *testing.T) {
	f := FedAsync{Alpha: 0.5}
	global := []float64{0, 0}
	downloaded := []float64{0, 0}
	u := Update{Delta: compress.NewSparseDense([]float64{2, 4})}
	if !f.OnReceive(global, downloaded, u) {
		t.Fatal("FedAsync did not advance")
	}
	if math.Abs(global[0]-1) > 1e-12 || math.Abs(global[1]-2) > 1e-12 {
		t.Fatalf("mixed global %v", global)
	}
}

func TestFedBuffFlushesAtK(t *testing.T) {
	f := NewFedBuff(3, 1)
	global := []float64{0}
	for i := 0; i < 2; i++ {
		if f.OnReceive(global, nil, Update{Delta: compress.NewSparseDense([]float64{3})}) {
			t.Fatal("FedBuff advanced before buffer full")
		}
	}
	if global[0] != 0 {
		t.Fatal("FedBuff applied early")
	}
	if !f.OnReceive(global, nil, Update{Delta: compress.NewSparseDense([]float64{3})}) {
		t.Fatal("FedBuff did not flush at K")
	}
	if math.Abs(global[0]-3) > 1e-12 {
		t.Fatalf("FedBuff applied %v, want mean 3", global[0])
	}
	if f.Buffered() != 0 {
		t.Fatal("buffer not cleared")
	}
}

func TestSyncEngineLearns(t *testing.T) {
	f := newTestFederation(5, true, 6)
	e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 7), 8)
	initAcc, _ := f.Evaluate(e.Global)
	e.RunRounds(15)
	final := e.Hist.FinalAcc()
	if final < initAcc+0.3 {
		t.Fatalf("sync FedAvg did not learn: %v -> %v", initAcc, final)
	}
	if e.Now() <= 0 {
		t.Fatal("simulated time did not advance")
	}
	if e.TotalUplinkBytes() == 0 || e.Hist.Rows[len(e.Hist.Rows)-1].DownlinkBytes == 0 {
		t.Fatal("no bytes accounted")
	}
	if e.TotalUpdates() != 5*15 {
		t.Fatalf("updates = %d, want 75", e.TotalUpdates())
	}
}

func TestSyncEngineMaxWaitDropsSlowClients(t *testing.T) {
	f := newTestFederation(4, true, 9)
	// Give client 0 a hopeless link.
	f.Net.SetLink(0, netsim.Link{UpBps: 10, DownBps: 10, LatencyS: 5})
	e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 10), 11)
	e.MaxWait = 2.0
	e.RunRound()
	row := e.Hist.Rows[0]
	if row.Participants != 4 {
		t.Fatalf("participants %d", row.Participants)
	}
	if row.Received != 3 {
		t.Fatalf("received %d, want 3 (slow client dropped)", row.Received)
	}
	if e.ClientUpdates[0] != 0 {
		t.Fatal("slow client's update was accepted")
	}
	if math.Abs(e.Now()-2.0) > 1e-9 {
		t.Fatalf("round duration %v, want MaxWait", e.Now())
	}
}

func TestSyncEngineCompressionReducesBytes(t *testing.T) {
	seed := uint64(12)
	dense := newTestFederation(3, true, seed)
	sparse := newTestFederation(3, true, seed)
	for _, c := range sparse.Clients {
		c.Codec = compress.NewDGC(0.9, 0)
	}
	eDense := NewSyncEngine(dense, FedAvg{}, NewFixedRatePlanner(1, 1, 13), 14)
	eSparse := NewSyncEngine(sparse, FedAvg{}, NewFixedRatePlanner(1, 50, 13), 14)
	eDense.RunRounds(3)
	eSparse.RunRounds(3)
	if eSparse.TotalUplinkBytes() >= eDense.TotalUplinkBytes()/10 {
		t.Fatalf("compression ineffective: %d vs %d bytes",
			eSparse.TotalUplinkBytes(), eDense.TotalUplinkBytes())
	}
}

func TestFixedRatePlannerCount(t *testing.T) {
	f := newTestFederation(10, true, 15)
	e := NewSyncEngine(f, FedAvg{}, nil, 16)
	p := NewFixedRatePlanner(0.5, 1, 17)
	sel := p.Plan(0, e)
	if len(sel) != 5 {
		t.Fatalf("selected %d, want 5", len(sel))
	}
	seen := map[int]bool{}
	for _, s := range sel {
		if seen[s.Client] {
			t.Fatal("duplicate client selected")
		}
		seen[s.Client] = true
	}
}

func TestUnreliablePlannerModes(t *testing.T) {
	f := newTestFederation(4, true, 18)
	e := NewSyncEngine(f, FedAvg{}, nil, 19)
	unrel := map[int]bool{1: true}

	drop := &UnreliablePlanner{Unreliable: unrel, Mode: ModeDropout}
	for round := 0; round < 3; round++ {
		for _, p := range drop.Plan(round, e) {
			if p.Client == 1 {
				t.Fatal("dropout client planned")
			}
		}
	}

	loss := &UnreliablePlanner{Unreliable: unrel, Mode: ModeDataLoss, Period: 2}
	has := func(round int) bool {
		for _, p := range loss.Plan(round, e) {
			if p.Client == 1 {
				return true
			}
		}
		return false
	}
	if !has(0) || has(1) || !has(2) {
		t.Fatal("data-loss client not on every-other-round schedule")
	}
}

func TestAsyncEngineLearns(t *testing.T) {
	f := newTestFederation(5, true, 20)
	slowDevices(f)
	e := NewAsyncEngine(f, FedAsync{Alpha: 0.5, Decay: 0.5}, AlwaysUpload{})
	initAcc, _ := f.Evaluate(e.Global)
	e.Run(30)
	if e.TotalUpdates() == 0 {
		t.Fatal("no async updates received")
	}
	final := e.Hist.FinalAcc()
	if final < initAcc+0.3 {
		t.Fatalf("async FedAsync did not learn: %v -> %v", initAcc, final)
	}
	if e.MeanStaleness() < 0 {
		t.Fatal("negative staleness")
	}
}

func TestAsyncEngineFedBuff(t *testing.T) {
	f := newTestFederation(4, true, 21)
	slowDevices(f)
	e := NewAsyncEngine(f, NewFedBuff(2, 1), AlwaysUpload{})
	e.Run(20)
	if e.TotalUpdates() == 0 {
		t.Fatal("no updates")
	}
	// Version advances once per K=2 received updates (±1 for a partial
	// buffer at the horizon).
	if e.Version > e.TotalUpdates()/2+1 || e.Version == 0 {
		t.Fatalf("version %d inconsistent with %d updates at K=2", e.Version, e.TotalUpdates())
	}
}

func TestAsyncSlowClientsAreStale(t *testing.T) {
	f := newTestFederation(4, true, 22)
	slowDevices(f)
	// Make one client's device 5x slower.
	f.Clients[0].Device = f.Clients[0].Device.Scaled(0.2)
	e := NewAsyncEngine(f, FedAsync{Alpha: 0.5, Decay: 0.5}, AlwaysUpload{})
	e.Run(30)
	if e.ClientUpdates[0] >= e.ClientUpdates[1] {
		t.Fatalf("slow client updated as often as fast: %v", e.ClientUpdates)
	}
	if e.MeanStaleness() == 0 {
		t.Fatal("heterogeneous federation produced zero staleness")
	}
}

func TestEnginesDeterministic(t *testing.T) {
	run := func() float64 {
		f := newTestFederation(3, false, 23)
		e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 24), 25)
		e.RunRounds(5)
		return e.Hist.FinalAcc()
	}
	if run() != run() {
		t.Fatal("sync engine not deterministic")
	}
	runAsync := func() float64 {
		f := newTestFederation(3, false, 26)
		slowDevices(f)
		e := NewAsyncEngine(f, FedAsync{Alpha: 0.5}, AlwaysUpload{})
		e.Run(10)
		return e.Hist.FinalAcc()
	}
	if runAsync() != runAsync() {
		t.Fatal("async engine not deterministic")
	}
}

func TestHistoryQueries(t *testing.T) {
	var h History
	h.Add(RoundStats{Round: 1, Time: 1, TestAcc: math.NaN()})
	h.Add(RoundStats{Round: 2, Time: 2, TestAcc: 0.5, UplinkBytes: 100, Updates: 5})
	h.Add(RoundStats{Round: 3, Time: 3, TestAcc: 0.8, UplinkBytes: 200, Updates: 10})
	if h.FinalAcc() != 0.8 || h.BestAcc() != 0.8 {
		t.Fatal("final/best acc wrong")
	}
	if h.TotalUplinkBytes() != 200 || h.TotalUpdates() != 10 {
		t.Fatal("totals wrong")
	}
	if h.TimeToAccuracy(0.5) != 2 {
		t.Fatalf("TimeToAccuracy = %v", h.TimeToAccuracy(0.5))
	}
	if h.TimeToAccuracy(0.99) != -1 {
		t.Fatal("unreached accuracy should be -1")
	}
	if h.AccuracyAtTime(2.5) != 0.5 {
		t.Fatalf("AccuracyAtTime = %v", h.AccuracyAtTime(2.5))
	}
}

func TestDatalessClientContributesZero(t *testing.T) {
	f := newTestFederation(2, true, 27)
	empty := f.Clients[0].Data.Subset(nil)
	c := NewClient(9, empty, f.NewModel(), f.Clients[0].Cfg, f.Clients[0].Device, stats.NewRNG(1))
	global := f.NewModel().ParamVector()
	delta, _ := c.TrainRound(global, nil)
	if norm(delta) != 0 {
		t.Fatal("dataless client produced nonzero delta")
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func TestHistoryWriteCSV(t *testing.T) {
	var h History
	h.Add(RoundStats{Round: 1, Time: 1.5, TestAcc: math.NaN(), TestLoss: math.NaN(), Participants: 5, Received: 4, UplinkBytes: 100, Updates: 4})
	h.Add(RoundStats{Round: 2, Time: 3, TestAcc: 0.5, TestLoss: 1.2, Participants: 5, Received: 5, UplinkBytes: 200, Updates: 9})
	var sb strings.Builder
	if err := h.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round,time,test_acc") {
		t.Fatalf("header missing: %s", out)
	}
	if !strings.Contains(out, "1,1.5,,,5,4,100,0,4") {
		t.Fatalf("NaN row malformed: %s", out)
	}
	if !strings.Contains(out, "2,3,0.5,1.2,5,5,200,0,9") {
		t.Fatalf("data row malformed: %s", out)
	}
}

func TestAggregatorNames(t *testing.T) {
	names := map[string]string{
		FedAvg{}.Name():          "fedavg",
		NewFedAdam(0.1).Name():   "fedadam",
		NewScaffold(1, 2).Name(): "scaffold",
		FedAsync{}.Name():        "fedasync",
		NewFedBuff(1, 1).Name():  "fedbuff",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("name %q, want %q", got, want)
		}
	}
}

func TestFedBuffValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 accepted")
		}
	}()
	NewFedBuff(0, 1)
}

func TestClientTrainFLOPs(t *testing.T) {
	f := newTestFederation(1, true, 90)
	c := f.Clients[0]
	flops := c.TrainFLOPs()
	want := c.Model.FLOPsPerSample() * float64(c.Cfg.LocalSteps*c.Cfg.BatchSize)
	if flops != want {
		t.Fatalf("TrainFLOPs = %v, want %v", flops, want)
	}
	empty := NewClient(9, c.Data.Subset(nil), f.NewModel(), c.Cfg, c.Device, stats.NewRNG(1))
	if empty.TrainFLOPs() != 0 {
		t.Fatal("dataless client reports nonzero FLOPs")
	}
}

func TestAsyncEngineAccessors(t *testing.T) {
	f := newTestFederation(2, true, 91)
	slowDevices(f)
	e := NewAsyncEngine(f, FedAsync{Alpha: 0.5}, AlwaysUpload{})
	e.EvalInterval = 2
	e.Run(4)
	if e.Now() <= 0 {
		t.Fatal("Now did not advance")
	}
	if e.TotalUplinkBytes() == 0 {
		t.Fatal("no uplink bytes")
	}
	if e.MeanStaleness() < 0 {
		t.Fatal("negative staleness")
	}
}

func TestSyncEngineRoundAccessor(t *testing.T) {
	f := newTestFederation(2, true, 92)
	e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 1), 2)
	if e.Round() != 0 {
		t.Fatal("fresh engine round != 0")
	}
	e.RunRound()
	if e.Round() != 1 {
		t.Fatal("round not incremented")
	}
}

func TestGradSyncValidation(t *testing.T) {
	f := newTestFederation(1, true, 93)
	defer func() {
		if recover() == nil {
			t.Fatal("lr=0 accepted")
		}
	}()
	NewGradSyncEngine(f, 0, 1)
}

func TestStalenessWeightSemantics(t *testing.T) {
	if w := StalenessWeight(0); w != 1 {
		t.Fatalf("StalenessWeight(0) = %v, want exactly 1", w)
	}
	if w := StalenessWeight(-3); w != 1 {
		t.Fatalf("negative staleness must clamp to 1, got %v", w)
	}
	for s := 1; s < 64; s++ {
		want := 1 / math.Sqrt(1+float64(s))
		if got := StalenessWeight(s); got != want {
			t.Fatalf("StalenessWeight(%d) = %v, want %v", s, got, want)
		}
		if StalenessWeight(s) >= StalenessWeight(s-1) {
			t.Fatalf("StalenessWeight not strictly decreasing at %d", s)
		}
	}
}

func TestFedBuffStalenessWeighting(t *testing.T) {
	f := NewFedBuff(2, 1)
	global := []float64{0}
	// A fresh delta of 4 and a staleness-3 delta of 0: down-weighting the
	// stale contribution pulls the weighted mean (1*4+0.5*0)/1.5 above the
	// plain mean of 2, because the fresh delta dominates.
	f.OnReceive(global, nil, Update{Delta: compress.NewSparseDense([]float64{4})})
	f.OnReceive(global, nil, Update{Delta: compress.NewSparseDense([]float64{0}), Staleness: 3})
	w := StalenessWeight(3)
	want := (4 + w*0) / (1 + w)
	if math.Abs(global[0]-want) > 1e-12 {
		t.Fatalf("weighted FedBuff applied %v, want %v", global[0], want)
	}
	if want <= 2 {
		t.Fatalf("down-weighted stale zero-delta should land above the plain mean, got want=%v", want)
	}
}
