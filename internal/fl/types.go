// Package fl implements the federated-learning substrate: clients with
// local trainers (plain SGD, FedProx proximal correction, SCAFFOLD control
// variates), server-side aggregation strategies (FedAvg, FedAdam, SCAFFOLD,
// FedAsync, FedBuff), and four protocol engines — the synchronous
// round-based engine with a maximum-wait dropout rule and the event-driven
// asynchronous engine with staleness-aware weighting that the paper
// studies, plus FedAT latency tiers (related work) and a per-step
// gradient-exchange engine (distributed synchronous SGD). Optional
// downlink compression (DownlinkCompressor) extends the paper's
// uplink-only compression.
//
// AdaFL (internal/core) plugs into these engines through the RoundPlanner
// and AsyncGate hooks.
package fl

import (
	"fmt"
	"io"

	"adafl/internal/compress"
	"adafl/internal/dataset"
	"adafl/internal/device"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
)

// Update is one client contribution as the server sees it.
type Update struct {
	// Client is the contributing client's index.
	Client int
	// Delta is the (possibly compressed) local model delta, Δ = w_local −
	// w_global_at_download.
	Delta *compress.Sparse
	// Weight is the client's data-proportion weight n_i/n.
	Weight float64
	// Staleness counts how many global versions elapsed between the
	// client's download and the server's receipt (async only; 0 in sync).
	Staleness int
	// CtrlDelta carries SCAFFOLD's control-variate update when present.
	CtrlDelta []float64
}

// Participation is a planner's decision for one client in one round.
type Participation struct {
	Client int
	// Ratio is the requested uplink compression ratio (1 = uncompressed).
	Ratio float64
	// Codec, when non-nil, overrides the client's own codec for this round
	// — the negotiated per-round codec assignment. The planner owns the
	// instance (and its state) and must hand each client its own.
	Codec compress.Codec
}

// RoundStats is one row of an engine's training history.
type RoundStats struct {
	Round int
	// Time is the simulated wall-clock time at the end of the round.
	Time float64
	// TestAcc and TestLoss are measured on the held-out set (NaN when the
	// round was not an evaluation round).
	TestAcc, TestLoss float64
	// Participants is how many clients were asked to contribute.
	Participants int
	// Received is how many updates actually arrived in time.
	Received int
	// UplinkBytes and DownlinkBytes are cumulative communication totals.
	UplinkBytes, DownlinkBytes int64
	// Updates is the cumulative count of client→server updates applied.
	Updates int
}

// History collects RoundStats and derives the table metrics.
type History struct {
	Rows []RoundStats
}

// Add appends a row.
func (h *History) Add(r RoundStats) { h.Rows = append(h.Rows, r) }

// FinalAcc returns the last recorded test accuracy (scanning backwards
// past non-eval rounds), or 0 if none was recorded.
func (h *History) FinalAcc() float64 {
	for i := len(h.Rows) - 1; i >= 0; i-- {
		if !isNaN(h.Rows[i].TestAcc) {
			return h.Rows[i].TestAcc
		}
	}
	return 0
}

// BestAcc returns the highest recorded test accuracy.
func (h *History) BestAcc() float64 {
	best := 0.0
	for _, r := range h.Rows {
		if !isNaN(r.TestAcc) && r.TestAcc > best {
			best = r.TestAcc
		}
	}
	return best
}

// TotalUplinkBytes returns the final cumulative uplink volume.
func (h *History) TotalUplinkBytes() int64 {
	if len(h.Rows) == 0 {
		return 0
	}
	return h.Rows[len(h.Rows)-1].UplinkBytes
}

// TotalUpdates returns the final cumulative update count.
func (h *History) TotalUpdates() int {
	if len(h.Rows) == 0 {
		return 0
	}
	return h.Rows[len(h.Rows)-1].Updates
}

// TimeToAccuracy returns the first simulated time at which test accuracy
// reached target, or -1 if never.
func (h *History) TimeToAccuracy(target float64) float64 {
	for _, r := range h.Rows {
		if !isNaN(r.TestAcc) && r.TestAcc >= target {
			return r.Time
		}
	}
	return -1
}

// AccuracyAtTime returns the last evaluated accuracy at or before t.
func (h *History) AccuracyAtTime(t float64) float64 {
	acc := 0.0
	for _, r := range h.Rows {
		if r.Time > t {
			break
		}
		if !isNaN(r.TestAcc) {
			acc = r.TestAcc
		}
	}
	return acc
}

func isNaN(x float64) bool { return x != x }

// WriteCSV emits the history as CSV with one row per round:
// round,time,acc,loss,participants,received,uplink,downlink,updates.
// NaN accuracy/loss cells (non-evaluation rounds) are left empty.
func (h *History) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "round,time,test_acc,test_loss,participants,received,uplink_bytes,downlink_bytes,updates"); err != nil {
		return err
	}
	for _, r := range h.Rows {
		acc, loss := "", ""
		if !isNaN(r.TestAcc) {
			acc = fmt.Sprintf("%g", r.TestAcc)
		}
		if !isNaN(r.TestLoss) {
			loss = fmt.Sprintf("%g", r.TestLoss)
		}
		if _, err := fmt.Fprintf(w, "%d,%g,%s,%s,%d,%d,%d,%d,%d\n",
			r.Round, r.Time, acc, loss, r.Participants, r.Received,
			r.UplinkBytes, r.DownlinkBytes, r.Updates); err != nil {
			return err
		}
	}
	return nil
}

// Federation bundles everything both engines need: the clients, the
// network, the test set and the model factory.
type Federation struct {
	Clients []*Client
	Net     *netsim.Network
	Test    *dataset.Dataset
	// NewModel builds the globally shared architecture; all clients and
	// the server derive their models from the same seed.
	NewModel func() *nn.Model
	// EvalBatch bounds evaluation batch size.
	EvalBatch int
}

// TotalSamples returns the number of training samples across all clients.
func (f *Federation) TotalSamples() int {
	n := 0
	for _, c := range f.Clients {
		n += c.Data.Len()
	}
	return n
}

// Weights returns the data-proportion weights n_i/n for all clients.
func (f *Federation) Weights() []float64 {
	total := float64(f.TotalSamples())
	w := make([]float64, len(f.Clients))
	for i, c := range f.Clients {
		if total > 0 {
			w[i] = float64(c.Data.Len()) / total
		}
	}
	return w
}

// NewFederation builds a federation over pre-partitioned client datasets.
// Clients get identical training hyperparameters and their own RNG streams;
// devices and codecs can be customised afterwards.
func NewFederation(parts []*dataset.Dataset, test *dataset.Dataset, net *netsim.Network,
	newModel func() *nn.Model, cfg TrainConfig, seed uint64) *Federation {
	if net.NumClients() != len(parts) {
		panic("fl: network size does not match client count")
	}
	root := stats.NewRNG(seed)
	f := &Federation{Net: net, Test: test, NewModel: newModel, EvalBatch: 64}
	for i, p := range parts {
		f.Clients = append(f.Clients, NewClient(i, p, newModel(), cfg, device.RaspberryPi4, root.Split()))
	}
	return f
}

// Evaluate measures (accuracy, loss) of the given parameter vector on the
// federation's test set using a scratch model.
func (f *Federation) Evaluate(params []float64) (acc, loss float64) {
	m := f.NewModel()
	m.SetParamVector(params)
	return m.EvaluateBatched(f.Test.X, f.Test.Labels, f.EvalBatch)
}
