package fl

import (
	"testing"

	"adafl/internal/dataset"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// TestSyncEngineDeterministicUnderParallelGEMM runs the same small
// paper-CNN federation twice with a 4-worker matmul budget and once
// serially, and requires bitwise-identical global models. The CNN's conv
// GEMMs are large enough to cross the row-parallel threshold, so this
// checks the guarantee the kernels document: every row's accumulation
// order is independent of the worker partition.
func TestSyncEngineDeterministicUnderParallelGEMM(t *testing.T) {
	old := tensor.MatMulWorkers()
	defer tensor.SetMatMulWorkers(old)

	run := func(workers int) []float64 {
		tensor.SetMatMulWorkers(workers)
		ds := dataset.SynthMNIST(120, 28, 31)
		train, test := ds.Split(0.8, 32)
		parts := dataset.PartitionIID(train, 3, 33)
		net := netsim.UniformNetwork(3, netsim.WiFiLink, 34)
		newModel := func() *nn.Model { return nn.NewPaperCNN(stats.NewRNG(35)) }
		cfg := TrainConfig{LocalSteps: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9}
		f := NewFederation(parts, test, net, newModel, cfg, 36)
		e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 37), 8)
		e.RunRounds(2)
		return append([]float64(nil), e.Global...)
	}

	first := run(4)
	second := run(4)
	serial := run(1)

	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("two 4-worker runs diverge at param %d: %v vs %v", i, first[i], second[i])
		}
	}
	for i := range first {
		if first[i] != serial[i] {
			t.Fatalf("parallel vs serial diverge at param %d: %v vs %v", i, first[i], serial[i])
		}
	}
}
