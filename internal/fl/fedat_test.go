package fl

import (
	"testing"

	"adafl/internal/netsim"
)

func TestFedATTierAssignment(t *testing.T) {
	f := newTestFederation(9, true, 40)
	// Make clients 0..2 slow devices so they land in the slowest tier.
	for i := 0; i < 3; i++ {
		f.Clients[i].Device = f.Clients[i].Device.Scaled(0.05)
	}
	e := NewFedATEngine(f, 3, 0.5)
	if len(e.Tiers) != 3 {
		t.Fatalf("tier count %d", len(e.Tiers))
	}
	total := 0
	seen := map[int]bool{}
	for _, tier := range e.Tiers {
		total += len(tier)
		for _, id := range tier {
			if seen[id] {
				t.Fatalf("client %d in two tiers", id)
			}
			seen[id] = true
		}
	}
	if total != 9 {
		t.Fatalf("tiers cover %d clients", total)
	}
	slowTier := e.Tiers[len(e.Tiers)-1]
	for _, id := range slowTier {
		if id > 2 {
			t.Fatalf("fast client %d in slowest tier %v", id, slowTier)
		}
	}
}

func TestFedATLearns(t *testing.T) {
	f := newTestFederation(6, true, 41)
	slowDevices(f)
	e := NewFedATEngine(f, 2, 0.5)
	e.EvalInterval = 5
	initAcc, _ := f.Evaluate(e.Global)
	e.Run(20)
	if e.Hist.FinalAcc() < initAcc+0.3 {
		t.Fatalf("FedAT did not learn: %v -> %v", initAcc, e.Hist.FinalAcc())
	}
	if e.TotalUplinkBytes() == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestFedATFastTiersUpdateMoreOften(t *testing.T) {
	f := newTestFederation(8, true, 42)
	// Slow half of the fleet drastically.
	slowDevices(f)
	for i := 4; i < 8; i++ {
		f.Clients[i].Device = f.Clients[i].Device.Scaled(0.1)
	}
	e := NewFedATEngine(f, 2, 0.5)
	e.Run(20)
	if e.TierUpdates[0] <= e.TierUpdates[1] {
		t.Fatalf("fast tier updated %d times vs slow tier %d",
			e.TierUpdates[0], e.TierUpdates[1])
	}
}

func TestFedATStragglersNotBlockFastTier(t *testing.T) {
	f := newTestFederation(6, true, 43)
	// One catastophically constrained client.
	slowDevices(f)
	f.Net.SetLink(5, netsim.Link{UpBps: 500, DownBps: 500, LatencyS: 2})
	e := NewFedATEngine(f, 3, 0.5)
	e.Run(20)
	// Fast tiers must still have completed multiple rounds despite the
	// straggler, which is FedAT's point versus plain sync.
	if e.TierUpdates[0] < 3 {
		t.Fatalf("fast tier completed only %d rounds", e.TierUpdates[0])
	}
}

func TestFedATTierCountClamped(t *testing.T) {
	f := newTestFederation(2, true, 44)
	e := NewFedATEngine(f, 10, 0.5)
	if len(e.Tiers) != 2 {
		t.Fatalf("tier count not clamped: %d", len(e.Tiers))
	}
}

// slowDevices scales the test federation's devices down so simulated tier
// rounds take ~0.2 s instead of milliseconds, keeping event counts (and
// real test time) modest.
func slowDevices(f *Federation) {
	for _, c := range f.Clients {
		c.Device = c.Device.Scaled(0.01)
	}
}
