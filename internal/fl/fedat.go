package fl

import (
	"math"
	"sort"

	"adafl/internal/compress"
	"adafl/internal/netsim"
	"adafl/internal/tensor"
)

// FedATEngine implements FedAT (Chai et al. 2021), the tiering baseline
// from the paper's related work: clients are grouped into tiers by their
// end-to-end round latency; each tier trains synchronously at its own
// cadence, and the server folds finished tier rounds into the global model
// asynchronously, weighting slower (less frequently updating) tiers up so
// stragglers are not drowned out.
//
// This reproduction keeps FedAT's two essential mechanisms — latency
// tiering and inverse-frequency cross-tier weighting — over the same
// simulated network/device substrate the other engines use.
type FedATEngine struct {
	Fed *Federation
	// NumTiers is the tier count M.
	NumTiers int
	// Alpha is the base cross-tier mixing weight.
	Alpha float64
	// EvalInterval mirrors AsyncEngine.
	EvalInterval float64

	Global  []float64
	Weights []float64
	Hist    History

	// Tiers lists the client ids of each tier, fastest first.
	Tiers [][]int
	// TierUpdates counts completed rounds per tier.
	TierUpdates []int

	queue     *netsim.EventQueue
	upBytes   int64
	downBytes int64
	deadline  float64
}

// NewFedATEngine tiers the federation's clients by estimated round
// latency (compute + dense transfer at time 0) and returns the engine.
func NewFedATEngine(fed *Federation, numTiers int, alpha float64) *FedATEngine {
	if numTiers < 1 {
		panic("fl: FedAT needs at least one tier")
	}
	if numTiers > len(fed.Clients) {
		numTiers = len(fed.Clients)
	}
	global := fed.NewModel().ParamVector()
	e := &FedATEngine{
		Fed: fed, NumTiers: numTiers, Alpha: alpha, EvalInterval: 1,
		Global:      global,
		Weights:     fed.Weights(),
		TierUpdates: make([]int, numTiers),
		queue:       netsim.NewEventQueue(),
	}
	e.assignTiers()
	return e
}

// assignTiers sorts clients by estimated latency and splits them evenly.
func (e *FedATEngine) assignTiers() {
	dim := len(e.Global)
	type lat struct {
		id int
		t  float64
	}
	lats := make([]lat, len(e.Fed.Clients))
	for i, c := range e.Fed.Clients {
		comp := c.ComputeSeconds()
		l := e.Fed.Net.Link(i)
		trans := float64(compress.DenseBytes(dim))/l.UpBps +
			float64(compress.DenseBytes(dim))/l.DownBps + 2*l.LatencyS
		lats[i] = lat{id: i, t: comp + trans}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a].t < lats[b].t })
	e.Tiers = make([][]int, e.NumTiers)
	for i, l := range lats {
		tier := i * e.NumTiers / len(lats)
		e.Tiers[tier] = append(e.Tiers[tier], l.id)
	}
}

// TotalUplinkBytes returns cumulative uplink volume.
func (e *FedATEngine) TotalUplinkBytes() int64 { return e.upBytes }

// Run simulates until the horizon.
func (e *FedATEngine) Run(horizon float64) {
	e.deadline = horizon
	for t := range e.Tiers {
		e.startTierRound(t, 0)
	}
	for t := e.EvalInterval; t <= horizon; t += e.EvalInterval {
		at := t
		e.queue.Schedule(at, func() { e.evaluate(at) })
	}
	e.queue.RunUntil(horizon)
}

// startTierRound runs one synchronous round inside tier t starting at
// time start, scheduling its completion.
func (e *FedATEngine) startTierRound(tier int, start float64) {
	if start > e.deadline || len(e.Tiers[tier]) == 0 {
		return
	}
	dim := len(e.Global)
	snapshot := tensor.CopyVec(e.Global)

	// Every member trains from the snapshot; the tier round lasts as long
	// as its slowest member.
	agg := make([]float64, dim)
	weightSum := 0.0
	dur := 0.0
	for _, id := range e.Tiers[tier] {
		c := e.Fed.Clients[id]
		dlDur, dlLost := e.Fed.Net.Transfer(id, netsim.Downlink, compress.DenseBytes(dim), start)
		e.downBytes += int64(compress.DenseBytes(dim))
		if dlLost {
			continue
		}
		delta, _ := c.TrainRound(snapshot, nil)
		msg := c.EncodeDelta(delta, 1)
		ulDur, ulLost := e.Fed.Net.Transfer(id, netsim.Uplink, msg.WireBytes(), start)
		e.upBytes += int64(msg.WireBytes())
		total := dlDur + c.ComputeSeconds() + ulDur
		if total > dur {
			dur = total
		}
		if ulLost {
			continue
		}
		msg.AddTo(agg, e.Weights[id])
		weightSum += e.Weights[id]
	}
	if dur == 0 {
		dur = e.EvalInterval // a fully-lost round still consumes time
	}
	end := start + dur
	if end > e.deadline {
		return // round would finish past the horizon
	}
	e.queue.Schedule(end, func() {
		if weightSum > 0 {
			e.applyTierUpdate(tier, snapshot, agg, weightSum)
		}
		e.startTierRound(tier, e.queue.Now())
	})
}

// applyTierUpdate folds a finished tier round into the global model with
// FedAT's inverse-frequency weighting: tiers that update rarely get a
// larger mixing coefficient.
func (e *FedATEngine) applyTierUpdate(tier int, snapshot, agg []float64, weightSum float64) {
	e.TierUpdates[tier]++
	minUpd := e.TierUpdates[0]
	for _, u := range e.TierUpdates {
		if u < minUpd {
			minUpd = u
		}
	}
	alpha := e.Alpha * float64(minUpd+1) / float64(e.TierUpdates[tier]+1)
	alpha = math.Min(alpha, e.Alpha)
	// Tier model = snapshot + weighted-average delta.
	for i := range e.Global {
		tierModel := snapshot[i] + agg[i]/weightSum
		e.Global[i] = (1-alpha)*e.Global[i] + alpha*tierModel
	}
}

// evaluate records a history row.
func (e *FedATEngine) evaluate(t float64) {
	acc, loss := e.Fed.Evaluate(e.Global)
	total := 0
	for _, u := range e.TierUpdates {
		total += u
	}
	e.Hist.Add(RoundStats{
		Round: total, Time: t, TestAcc: acc, TestLoss: loss,
		UplinkBytes: e.upBytes, DownlinkBytes: e.downBytes, Updates: total,
	})
}
