package fl

import (
	"runtime"
	"testing"
)

// TestSyncEngineDeterministicAcrossGOMAXPROCS verifies the parallel round
// implementation's core guarantee: results are bit-identical regardless of
// how many CPUs execute the client fan-out.
func TestSyncEngineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) ([]float64, int64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		f := newTestFederation(6, false, 95)
		e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(0.5, 1, 96), 97)
		e.EvalEvery = 0
		e.RunRounds(8)
		return e.Global, e.TotalUplinkBytes()
	}
	g1, b1 := run(1)
	g4, b4 := run(4)
	if b1 != b4 {
		t.Fatalf("byte accounting differs: %d vs %d", b1, b4)
	}
	for i := range g1 {
		if g1[i] != g4[i] {
			t.Fatalf("global model differs at %d: %v vs %v", i, g1[i], g4[i])
		}
	}
}

// TestEvaluateDeterministicAcrossGOMAXPROCS does the same for parallel
// batched evaluation.
func TestEvaluateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	f := newTestFederation(2, true, 98)
	params := f.NewModel().ParamVector()
	run := func(procs int) (float64, float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return f.Evaluate(params)
	}
	a1, l1 := run(1)
	a4, l4 := run(4)
	if a1 != a4 || l1 != l4 {
		t.Fatalf("evaluation differs: (%v,%v) vs (%v,%v)", a1, l1, a4, l4)
	}
}
