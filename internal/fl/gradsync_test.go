package fl

import "testing"

func TestGradSyncLearns(t *testing.T) {
	f := newTestFederation(4, true, 80)
	e := NewGradSyncEngine(f, 0.1, 1)
	e.EvalEvery = 20
	initAcc, _ := f.Evaluate(e.Global)
	e.RunSteps(100)
	if acc := e.Hist.FinalAcc(); acc < initAcc+0.3 {
		t.Fatalf("gradient-sync SGD did not learn: %v -> %v", initAcc, acc)
	}
	if e.TotalUplinkBytes() == 0 || e.Steps() != 100 {
		t.Fatal("accounting broken")
	}
}

func TestGradSyncDGCWithMomentumCorrection(t *testing.T) {
	// In gradient-exchange mode, momentum-corrected DGC at a high ratio
	// must still learn — this is the setting the correction is derived
	// for (unlike delta exchange, where it diverges; see DESIGN.md).
	f := newTestFederation(4, true, 81)
	AttachGradDGC(f, 0.9, 10)
	e := NewGradSyncEngine(f, 0.1, 20)
	e.EvalEvery = 20
	initAcc, _ := f.Evaluate(e.Global)
	e.RunSteps(150)
	if acc := e.Hist.FinalAcc(); acc < initAcc+0.3 {
		t.Fatalf("momentum-corrected DGC did not learn: %v -> %v", initAcc, acc)
	}
}

func TestGradSyncMomentumCorrectionHelps(t *testing.T) {
	// The DGC paper's claim: at aggressive sparsity, momentum correction
	// beats plain error feedback (which beats nothing only barely).
	run := func(momentum float64) float64 {
		f := newTestFederation(4, true, 82)
		AttachGradDGC(f, momentum, 10)
		e := NewGradSyncEngine(f, 0.1, 50)
		e.EvalEvery = 30
		e.RunSteps(180)
		return e.Hist.FinalAcc()
	}
	corrected := run(0.9)
	plain := run(0)
	// Allow noise, but corrected must not be clearly worse.
	if corrected < plain-0.1 {
		t.Fatalf("momentum correction hurt in its own setting: %v vs %v", corrected, plain)
	}
}

func TestGradSyncCompressionSavesBytes(t *testing.T) {
	dense := newTestFederation(3, true, 83)
	eDense := NewGradSyncEngine(dense, 0.1, 1)
	eDense.RunSteps(10)

	sparse := newTestFederation(3, true, 83)
	AttachGradDGC(sparse, 0.9, 10)
	eSparse := NewGradSyncEngine(sparse, 0.1, 20)
	eSparse.RunSteps(10)

	if eSparse.TotalUplinkBytes() >= eDense.TotalUplinkBytes()/5 {
		t.Fatalf("20x compression saved too little: %d vs %d",
			eSparse.TotalUplinkBytes(), eDense.TotalUplinkBytes())
	}
}

func TestBatchGradientMatchesTraining(t *testing.T) {
	f := newTestFederation(1, true, 84)
	c := f.Clients[0]
	params := f.NewModel().ParamVector()
	g := c.BatchGradient(params)
	if norm(g) == 0 {
		t.Fatal("zero gradient")
	}
	if len(g) != len(params) {
		t.Fatal("gradient dimension mismatch")
	}
}
