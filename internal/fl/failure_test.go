package fl

import (
	"testing"

	"adafl/internal/netsim"
)

// Failure-injection tests: lossy links, hopeless clients, and pathological
// configurations must degrade gracefully, never wedge or panic.

func TestSyncEngineSurvivesLossyLinks(t *testing.T) {
	f := newTestFederation(5, true, 50)
	for i := 0; i < 5; i++ {
		l := f.Net.Link(i)
		l.LossProb = 0.3
		f.Net.SetLink(i, l)
	}
	e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 51), 52)
	e.MaxWait = 10
	e.EvalEvery = 5
	e.RunRounds(20)
	last := e.Hist.Rows[len(e.Hist.Rows)-1]
	if last.Received >= last.Participants*20 {
		t.Fatal("lossy links dropped nothing")
	}
	if e.TotalUpdates() == 0 {
		t.Fatal("no update ever survived 30% loss")
	}
	// It should still learn, just slower (insight 1 of the paper).
	if e.Hist.FinalAcc() < 0.3 {
		t.Fatalf("accuracy %v under loss", e.Hist.FinalAcc())
	}
}

func TestSyncEngineAllClientsDropped(t *testing.T) {
	f := newTestFederation(3, true, 53)
	for i := 0; i < 3; i++ {
		f.Net.SetLink(i, netsim.Link{UpBps: 1, DownBps: 1, LatencyS: 100})
	}
	e := NewSyncEngine(f, FedAvg{}, NewFixedRatePlanner(1, 1, 54), 55)
	e.MaxWait = 0.001
	before := append([]float64(nil), e.Global...)
	e.RunRound()
	// Nothing arrived: the model must be unchanged and the clock must
	// still advance by the deadline.
	for i := range before {
		if e.Global[i] != before[i] {
			t.Fatal("empty round changed the model")
		}
	}
	if e.Now() != 0.001 {
		t.Fatalf("empty round advanced clock to %v", e.Now())
	}
}

func TestAsyncEngineSurvivesDownlinkLoss(t *testing.T) {
	f := newTestFederation(3, true, 56)
	for i := 0; i < 3; i++ {
		l := f.Net.Link(i)
		l.LossProb = 0.5
		f.Net.SetLink(i, l)
	}
	e := NewAsyncEngine(f, FedAsync{Alpha: 0.5}, AlwaysUpload{})
	e.EvalInterval = 5
	e.Run(20)
	// Half of all transfers vanish, but retries keep the system alive.
	if e.TotalUpdates() == 0 {
		t.Fatal("no update survived")
	}
}

func TestAsyncEngineAllInactive(t *testing.T) {
	f := newTestFederation(2, true, 57)
	e := NewAsyncEngine(f, FedAsync{Alpha: 0.5}, AlwaysUpload{})
	e.Inactive = map[int]bool{0: true, 1: true}
	e.EvalInterval = 5
	e.Run(10) // must terminate despite no client activity
	if e.TotalUpdates() != 0 {
		t.Fatal("inactive clients produced updates")
	}
	if len(e.Hist.Rows) == 0 {
		t.Fatal("evaluation events did not run")
	}
}

func TestSyncEngineZeroParticipants(t *testing.T) {
	f := newTestFederation(2, true, 58)
	e := NewSyncEngine(f, FedAvg{}, emptyPlanner{}, 59)
	e.RunRounds(3) // must not panic or divide by zero
	if e.TotalUpdates() != 0 {
		t.Fatal("phantom updates")
	}
}

type emptyPlanner struct{}

func (emptyPlanner) Plan(int, *SyncEngine) []Participation { return nil }

func TestFedBuffPartialBufferAtShutdown(t *testing.T) {
	// A FedBuff run that ends with a partially filled buffer must simply
	// leave the tail unapplied (matching the algorithm's semantics).
	f := newTestFederation(3, true, 60)
	slowDevices(f)
	buff := NewFedBuff(1000, 1) // never fills within the horizon
	e := NewAsyncEngine(f, buff, AlwaysUpload{})
	e.EvalInterval = 5
	e.Run(10)
	if e.Version != 0 {
		t.Fatalf("version advanced %d times with an unfillable buffer", e.Version)
	}
	if buff.Buffered() == 0 {
		t.Fatal("buffer empty despite received updates")
	}
}
