package tensor

import "math"

// Vector helpers operate on flat []float64 slices. Flattened parameter and
// gradient vectors are the currency of the FL aggregation layer, so these
// live here rather than on Tensor.

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// CosineSimilarity returns the cosine of the angle between a and b in
// [-1, 1]. If either vector is (numerically) zero the similarity is defined
// as 0: a zero gradient carries no directional information.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Clamp floating-point excursions so downstream [0,1] rescaling holds.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// EuclideanDistance returns ‖a-b‖₂.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: EuclideanDistance length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddVec computes dst = a + b, writing into dst (which may alias a or b).
func AddVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: AddVec length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubVec computes dst = a - b, writing into dst (which may alias a or b).
func SubVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: SubVec length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ClipNorm rescales v in place so that ‖v‖₂ ≤ maxNorm, returning the scale
// factor applied (1 if no clipping occurred). maxNorm must be positive.
func ClipNorm(v []float64, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic("tensor: ClipNorm with non-positive maxNorm")
	}
	n := Norm2(v)
	if n <= maxNorm || n == 0 {
		return 1
	}
	s := maxNorm / n
	ScaleVec(v, s)
	return s
}

// ZerosLike returns a zero vector of the same length as v.
func ZerosLike(v []float64) []float64 { return make([]float64, len(v)) }

// CopyVec returns a fresh copy of v.
func CopyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
