package tensor

// Assembly bindings for the AVX2+FMA micro-kernels in gemm_amd64.s.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func fmaAxpy4(c0, c1, c2, c3, b *float64, n int, a0, a1, a2, a3 float64)

//go:noescape
func fmaDot4(a, b0, b1, b2, b3 *float64, n int) (s0, s1, s2, s3 float64)

// detectSIMD reports whether the CPU and OS support the AVX2+FMA kernels:
// CPUID must advertise FMA, AVX and AVX2, the OS must have enabled XSAVE
// (OSXSAVE) and be preserving XMM+YMM state across context switches.
func detectSIMD() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
