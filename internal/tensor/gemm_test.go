package tensor

import (
	"fmt"
	"math"
	"testing"

	"adafl/internal/stats"
)

// relClose reports whether x and y agree within tol relative tolerance.
func relClose(x, y, tol float64) bool {
	d := math.Abs(x - y)
	scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	return d <= tol*scale
}

func assertTensorsClose(t *testing.T, got, want *Tensor, tol float64, label string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: size %d vs %d", label, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if !relClose(got.Data[i], want.Data[i], tol) {
			t.Fatalf("%s: element %d: got %v want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// equivalenceShapes deliberately includes shapes that are not multiples of
// the 4×4 micro-kernel or the KC/NC cache blocks, plus degenerate 1-sized
// dimensions and the paper-CNN GEMM shapes.
var equivalenceShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{3, 5, 2},
	{4, 4, 4},
	{5, 9, 6},
	{7, 13, 11},
	{8, 300, 5}, // crosses a KC block boundary mid-reduction
	{16, 16, 16},
	{23, 31, 17},
	{20, 25, 576}, // conv1
	{50, 500, 64}, // conv2
	{33, 257, 65}, // every dimension one past a block/kernel multiple
}

// TestBlockedMatMulMatchesNaive checks all four blocked kernels against the
// retained seed kernels within 1e-9 relative tolerance, serial and with a
// forced worker budget.
func TestBlockedMatMulMatchesNaive(t *testing.T) {
	simdModes := []bool{false}
	if detectSIMD() {
		simdModes = append(simdModes, true)
	}
	oldSIMD := simdEnabled
	defer func() { simdEnabled = oldSIMD }()
	for _, simd := range simdModes {
		simdEnabled = simd
		testBlockedMatMulMatchesNaive(t, simd)
	}
}

func testBlockedMatMulMatchesNaive(t *testing.T, simd bool) {
	for _, workers := range []int{1, 4} {
		old := MatMulWorkers()
		SetMatMulWorkers(workers)
		for _, s := range equivalenceShapes {
			label := fmt.Sprintf("simd%v-w%d-%dx%dx%d", simd, workers, s.m, s.k, s.n)
			r := stats.NewRNG(uint64(s.m*1000000 + s.k*1000 + s.n))

			// c = a @ b
			a := New(s.m, s.k)
			a.RandNorm(r, 1)
			b := New(s.k, s.n)
			b.RandNorm(r, 1)
			got, want := New(s.m, s.n), New(s.m, s.n)
			MatMulInto(got, a, b)
			naiveMatMulInto(want, a, b)
			assertTensorsClose(t, got, want, 1e-9, label+"-MatMulInto")

			// c = a @ btᵀ with bt (n×k)
			bt := New(s.n, s.k)
			bt.RandNorm(r, 1)
			got.Zero()
			want.Zero()
			MatMulTransposeB(got, a, bt)
			naiveMatMulTransposeB(want, a, bt)
			assertTensorsClose(t, got, want, 1e-9, label+"-MatMulTransposeB")

			// c += a @ btᵀ on a shared non-zero starting point
			base := New(s.m, s.n)
			base.RandNorm(r, 1)
			got = base.Clone()
			want = base.Clone()
			MatMulTransposeBAdd(got, a, bt)
			naiveMatMulTransposeBAdd(want, a, bt)
			assertTensorsClose(t, got, want, 1e-9, label+"-MatMulTransposeBAdd")

			// c += atᵀ @ b with at (k×m)
			at := New(s.k, s.m)
			at.RandNorm(r, 1)
			got = base.Clone()
			want = base.Clone()
			MatMulTransposeA(got, at, b)
			naiveMatMulTransposeA(want, at, b)
			assertTensorsClose(t, got, want, 1e-9, label+"-MatMulTransposeA")
		}
		SetMatMulWorkers(old)
	}
}

// TestParallelMatMulBitIdentical verifies the row-parallel path produces
// bit-identical output to the serial path: each row's accumulation order is
// independent of the worker partition, so determinism must be exact.
func TestParallelMatMulBitIdentical(t *testing.T) {
	r := stats.NewRNG(42)
	a := New(64, 300)
	a.RandNorm(r, 1)
	b := New(300, 96)
	b.RandNorm(r, 1)

	old := MatMulWorkers()
	defer SetMatMulWorkers(old)

	SetMatMulWorkers(1)
	serial := New(64, 96)
	MatMulInto(serial, a, b)

	for _, w := range []int{2, 3, 8} {
		SetMatMulWorkers(w)
		par := New(64, 96)
		MatMulInto(par, a, b)
		for i := range par.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", w, i, par.Data[i], serial.Data[i])
			}
		}
	}
}

// TestWorkerBudgetRestored checks tokens drain back after parallel calls.
func TestWorkerBudgetRestored(t *testing.T) {
	old := MatMulWorkers()
	defer SetMatMulWorkers(old)
	SetMatMulWorkers(4)
	r := stats.NewRNG(7)
	a := New(64, 300)
	a.RandNorm(r, 1)
	b := New(300, 96)
	b.RandNorm(r, 1)
	c := New(64, 96)
	for i := 0; i < 10; i++ {
		MatMulInto(c, a, b)
	}
	if free := helperTokens.Load(); free != 3 {
		t.Fatalf("helper tokens leaked: have %d free of 3", free)
	}
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}

// TestMatMulShapePanics covers the shape guards of all matmul variants:
// mismatched inner dimensions, wrong output shapes and non-2D operands.
func TestMatMulShapePanics(t *testing.T) {
	a := New(3, 4)  // m×k
	b := New(4, 5)  // k×n
	bt := New(5, 4) // n×k
	at := New(4, 3) // k×m
	c := New(3, 5)  // m×n
	bad := New(2, 2)
	vec := New(4)

	mustPanic(t, "MatMul inner", func() { MatMul(a, bad) })
	mustPanic(t, "MatMul rank", func() { MatMul(a, vec) })

	mustPanic(t, "MatMulInto inner", func() { MatMulInto(c, a, bad) })
	mustPanic(t, "MatMulInto out", func() { MatMulInto(bad, a, b) })
	mustPanic(t, "MatMulInto rank", func() { MatMulInto(c, vec, b) })

	mustPanic(t, "MatMulTransposeB inner", func() { MatMulTransposeB(c, a, New(5, 3)) })
	mustPanic(t, "MatMulTransposeB out", func() { MatMulTransposeB(bad, a, bt) })
	mustPanic(t, "MatMulTransposeB rank", func() { MatMulTransposeB(c, a, vec) })

	mustPanic(t, "MatMulTransposeBAdd inner", func() { MatMulTransposeBAdd(c, a, New(5, 3)) })
	mustPanic(t, "MatMulTransposeBAdd out", func() { MatMulTransposeBAdd(bad, a, bt) })

	mustPanic(t, "MatMulTransposeA inner", func() { MatMulTransposeA(c, at, New(3, 5)) })
	mustPanic(t, "MatMulTransposeA out", func() { MatMulTransposeA(bad, at, b) })
	mustPanic(t, "MatMulTransposeA rank", func() { MatMulTransposeA(c, vec, b) })

	// Valid calls must not panic after all that.
	MatMulInto(c, a, b)
	MatMulTransposeB(c, a, bt)
	MatMulTransposeBAdd(c, a, bt)
	MatMulTransposeA(c, at, b)
}

// TestScratchPoolRoundTrip checks GetScratch length semantics and reuse.
func TestScratchPoolRoundTrip(t *testing.T) {
	s := GetScratch(100)
	if len(s) != 100 {
		t.Fatalf("GetScratch(100) returned len %d", len(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	PutScratch(s)
	s2 := GetScratch(50)
	if len(s2) != 50 {
		t.Fatalf("GetScratch(50) returned len %d", len(s2))
	}
	PutScratch(s2)
}
