package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Blocked GEMM kernels.
//
// All four matmul variants (MatMulInto, MatMulTransposeA, MatMulTransposeB,
// MatMulTransposeBAdd) share the same structure: an outer cache-blocking
// loop nest (KC over the reduction dimension, NC over output columns) around
// a 4×4 register micro-kernel that keeps sixteen independent accumulator
// chains live, so the FPU pipeline is never stalled on a single running sum
// and every loaded element of B is reused four times. The im2col lowering in
// internal/nn funnels all convolution work through these kernels, so they
// are the hot path of every experiment in the repository.
//
// Large products additionally fan out across goroutines over disjoint row
// blocks of C. The fan-out is gated twice: products below minParallelWork
// multiply-adds stay serial, and helper goroutines are drawn from a global
// token budget (SetMatMulWorkers) shared by every concurrent matmul, so
// client-level parallelism in fl.SyncEngine cannot oversubscribe the
// machine — at most budget-1 helper goroutines exist process-wide no matter
// how many clients train at once. Each row of C is computed entirely by one
// worker with a fixed loop structure, so results are bit-identical
// regardless of the worker count — parallel runs stay deterministic.

const (
	// gemmKC blocks the reduction dimension so the active A panel and B
	// panel rows stay cache-resident while a C tile is accumulated.
	gemmKC = 256
	// gemmNC blocks output columns so the C tile rows being updated fit in
	// L1 alongside the streamed B rows.
	gemmNC = 1024
	// gemmMR is the micro-kernel height (rows of C per register tile).
	gemmMR = 4
	// minParallelWork is the m·k·n multiply-add count below which a product
	// runs serially: small matmuls finish before a goroutine handoff pays
	// for itself.
	minParallelWork = 1 << 18
)

var (
	// matmulBudget is the total worker budget (including the calling
	// goroutine); helperTokens holds the currently available helper slots.
	matmulBudget atomic.Int64
	helperTokens atomic.Int64
)

func init() { SetMatMulWorkers(runtime.GOMAXPROCS(0)) }

// SetMatMulWorkers sets the global matmul worker budget: the maximum number
// of goroutines (including callers) simultaneously executing GEMM work
// across the whole process. n < 1 is treated as 1 (fully serial). The
// budget is shared by all concurrent matmuls, so setting it to GOMAXPROCS
// keeps intra-op and inter-op parallelism jointly bounded.
func SetMatMulWorkers(n int) {
	if n < 1 {
		n = 1
	}
	old := matmulBudget.Swap(int64(n))
	if old == 0 {
		// First call (from init): the zero-value state has no helper
		// tokens, i.e. behaves like budget 1.
		old = 1
	}
	helperTokens.Add(int64(n) - old)
}

// MatMulWorkers returns the current worker budget.
func MatMulWorkers() int { return int(matmulBudget.Load()) }

// acquireHelpers grabs up to max helper tokens without blocking.
func acquireHelpers(max int) int {
	if max <= 0 {
		return 0
	}
	got := 0
	for got < max {
		free := helperTokens.Load()
		if free <= 0 {
			break
		}
		take := free
		if take > int64(max-got) {
			take = int64(max - got)
		}
		if helperTokens.CompareAndSwap(free, free-take) {
			got += int(take)
		}
	}
	return got
}

func releaseHelpers(n int) {
	if n > 0 {
		helperTokens.Add(int64(n))
	}
}

// simdEnabled selects the AVX2+FMA micro-kernels when the CPU supports
// them; the pure-Go blocked kernels are the universal fallback. Tests flip
// this to exercise both paths.
var simdEnabled = detectSIMD()

// planHelpers acquires helper tokens for a product of the given row count
// and m·k·n multiply-add work, returning 0 when the product should run
// serially (too small, or no budget free).
func planHelpers(m, work int) int {
	if work < minParallelWork || m < 2*gemmMR {
		return 0
	}
	return acquireHelpers(m/gemmMR - 1)
}

// runRows splits the row range [0, m) across the calling goroutine and
// helpers (> 0) already-acquired helper tokens, calling fn on disjoint
// sub-ranges. Chunks are aligned to gemmMR so every worker runs full
// micro-kernel tiles; per-row results do not depend on the partition, so
// output is bit-identical to a serial run.
func runRows(helpers, m int, fn func(i0, i1 int)) {
	workers := helpers + 1
	chunk := (m + workers - 1) / workers
	chunk = (chunk + gemmMR - 1) / gemmMR * gemmMR
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		s := w * chunk
		if s >= m {
			break
		}
		e := min(s+chunk, m)
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(s, e)
	}
	fn(0, min(chunk, m))
	wg.Wait()
	releaseHelpers(helpers)
}

// MatMulInto computes c = a @ b into an existing (m×n) tensor, where a is
// (m×k) and b is (k×n).
func MatMulInto(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v x %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	if helpers := planHelpers(m, m*k*n); helpers > 0 {
		runRows(helpers, m, func(i0, i1 int) {
			gemmRows(c.Data, a.Data, b.Data, k, n, i0, i1)
		})
		return
	}
	gemmRows(c.Data, a.Data, b.Data, k, n, 0, m)
}

// gemmRows computes rows [i0,i1) of c = a @ b (overwriting them).
func gemmRows(c, a, b []float64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		row := c[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	if simdEnabled {
		gemmRowsFMA(c, a, b, k, n, i0, i1)
		return
	}
	for pc := 0; pc < k; pc += gemmKC {
		pe := min(pc+gemmKC, k)
		for jc := 0; jc < n; jc += gemmNC {
			je := min(jc+gemmNC, n)
			i := i0
			for ; i+gemmMR <= i1; i += gemmMR {
				gemmMicro4(c, a, b, k, n, i, pc, pe, jc, je)
			}
			for ; i < i1; i++ {
				gemmMicro1(c, a, b, k, n, i, pc, pe, jc, je)
			}
		}
	}
}

// gemmRowsFMA computes rows [i0,i1) of c += a @ b with the quad-axpy
// assembly kernel: for each reduction index p, the B row streams through
// four FMA lanes feeding four rows of C. Rows must be pre-zeroed. The
// per-element accumulation order (ascending p) matches the scalar path.
func gemmRowsFMA(c, a, b []float64, k, n, i0, i1 int) {
	for jc := 0; jc < n; jc += gemmNC {
		je := min(jc+gemmNC, n)
		w := je - jc
		i := i0
		for ; i+gemmMR <= i1; i += gemmMR {
			c0 := c[i*n+jc : i*n+je]
			c1 := c[(i+1)*n+jc : (i+1)*n+je]
			c2 := c[(i+2)*n+jc : (i+2)*n+je]
			c3 := c[(i+3)*n+jc : (i+3)*n+je]
			for p := 0; p < k; p++ {
				br := b[p*n+jc : p*n+je]
				fmaAxpy4(&c0[0], &c1[0], &c2[0], &c3[0], &br[0], w,
					a[i*k+p], a[(i+1)*k+p], a[(i+2)*k+p], a[(i+3)*k+p])
			}
		}
		for ; i < i1; i++ {
			gemmMicro1(c, a, b, k, n, i, 0, k, jc, je)
		}
	}
}

// gemmMicro4 accumulates the contribution of A columns [pc,pe) into the
// 4×(je-jc) tile of C at rows i..i+3, columns jc..je, walking the tile in
// 4×4 register blocks.
func gemmMicro4(c, a, b []float64, k, n, i, pc, pe, jc, je int) {
	a0 := a[i*k+pc : i*k+pe]
	a1 := a[(i+1)*k+pc : (i+1)*k+pe]
	a2 := a[(i+2)*k+pc : (i+2)*k+pe]
	a3 := a[(i+3)*k+pc : (i+3)*k+pe]
	c0 := c[i*n : (i+1)*n]
	c1 := c[(i+1)*n : (i+2)*n]
	c2 := c[(i+2)*n : (i+3)*n]
	c3 := c[(i+3)*n : (i+4)*n]
	j := jc
	for ; j+4 <= je; j += 4 {
		var s00, s01, s02, s03 float64
		var s10, s11, s12, s13 float64
		var s20, s21, s22, s23 float64
		var s30, s31, s32, s33 float64
		off := pc*n + j
		for p := 0; p < len(a0); p++ {
			bp := b[off : off+4 : off+4]
			b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
			v := a0[p]
			s00 += v * b0
			s01 += v * b1
			s02 += v * b2
			s03 += v * b3
			v = a1[p]
			s10 += v * b0
			s11 += v * b1
			s12 += v * b2
			s13 += v * b3
			v = a2[p]
			s20 += v * b0
			s21 += v * b1
			s22 += v * b2
			s23 += v * b3
			v = a3[p]
			s30 += v * b0
			s31 += v * b1
			s32 += v * b2
			s33 += v * b3
			off += n
		}
		c0[j] += s00
		c0[j+1] += s01
		c0[j+2] += s02
		c0[j+3] += s03
		c1[j] += s10
		c1[j+1] += s11
		c1[j+2] += s12
		c1[j+3] += s13
		c2[j] += s20
		c2[j+1] += s21
		c2[j+2] += s22
		c2[j+3] += s23
		c3[j] += s30
		c3[j+1] += s31
		c3[j+2] += s32
		c3[j+3] += s33
	}
	for ; j < je; j++ {
		var s0, s1, s2, s3 float64
		off := pc*n + j
		for p := 0; p < len(a0); p++ {
			bv := b[off]
			s0 += a0[p] * bv
			s1 += a1[p] * bv
			s2 += a2[p] * bv
			s3 += a3[p] * bv
			off += n
		}
		c0[j] += s0
		c1[j] += s1
		c2[j] += s2
		c3[j] += s3
	}
}

// gemmMicro1 is the single-row remainder kernel (columns unrolled by 4).
func gemmMicro1(c, a, b []float64, k, n, i, pc, pe, jc, je int) {
	a0 := a[i*k+pc : i*k+pe]
	c0 := c[i*n : (i+1)*n]
	j := jc
	for ; j+4 <= je; j += 4 {
		var s0, s1, s2, s3 float64
		off := pc*n + j
		for p := 0; p < len(a0); p++ {
			bp := b[off : off+4 : off+4]
			v := a0[p]
			s0 += v * bp[0]
			s1 += v * bp[1]
			s2 += v * bp[2]
			s3 += v * bp[3]
			off += n
		}
		c0[j] += s0
		c0[j+1] += s1
		c0[j+2] += s2
		c0[j+3] += s3
	}
	for ; j < je; j++ {
		s := 0.0
		off := pc*n + j
		for p := 0; p < len(a0); p++ {
			s += a0[p] * b[off]
			off += n
		}
		c0[j] += s
	}
}

// MatMulTransposeB computes c = a @ bᵀ where a is (m×k) and b is (n×k),
// writing into the existing (m×n) tensor c. This avoids materialising the
// transpose in dense-layer backward passes.
func MatMulTransposeB(c, a, b *Tensor) {
	matMulTransposeB(c, a, b, false)
}

// MatMulTransposeBAdd computes c += a @ bᵀ where a is (m×k) and b is
// (n×k), accumulating into the existing (m×n) tensor c — the form
// weight-gradient accumulation across mini-batches wants.
func MatMulTransposeBAdd(c, a, b *Tensor) {
	matMulTransposeB(c, a, b, true)
}

func matMulTransposeB(c, a, b *Tensor, add bool) {
	if a.Rank() != 2 || b.Rank() != 2 || b.Dim(1) != a.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTransposeB shape mismatch %v x %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: MatMulTransposeB output shape mismatch")
	}
	if helpers := planHelpers(m, m*k*n); helpers > 0 {
		runRows(helpers, m, func(i0, i1 int) {
			gemmTBRows(c.Data, a.Data, b.Data, k, n, i0, i1, add)
		})
		return
	}
	gemmTBRows(c.Data, a.Data, b.Data, k, n, 0, m, add)
}

// gemmTBRows computes rows [i0,i1) of c = a @ bᵀ (dot-product form: both
// operands are traversed along contiguous rows).
func gemmTBRows(c, a, b []float64, k, n, i0, i1 int, add bool) {
	if !add {
		for i := i0; i < i1; i++ {
			row := c[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	if simdEnabled {
		gemmTBRowsFMA(c, a, b, k, n, i0, i1)
		return
	}
	for pc := 0; pc < k; pc += gemmKC {
		pe := min(pc+gemmKC, k)
		i := i0
		for ; i+gemmMR <= i1; i += gemmMR {
			a0 := a[i*k+pc : i*k+pe]
			a1 := a[(i+1)*k+pc : (i+1)*k+pe]
			a2 := a[(i+2)*k+pc : (i+2)*k+pe]
			a3 := a[(i+3)*k+pc : (i+3)*k+pe]
			c0 := c[i*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			c2 := c[(i+2)*n : (i+3)*n]
			c3 := c[(i+3)*n : (i+4)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b[j*k+pc : j*k+pe]
				b1 := b[(j+1)*k+pc : (j+1)*k+pe]
				b2 := b[(j+2)*k+pc : (j+2)*k+pe]
				b3 := b[(j+3)*k+pc : (j+3)*k+pe]
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				var s20, s21, s22, s23 float64
				var s30, s31, s32, s33 float64
				for p := 0; p < len(a0); p++ {
					bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
					v := a0[p]
					s00 += v * bv0
					s01 += v * bv1
					s02 += v * bv2
					s03 += v * bv3
					v = a1[p]
					s10 += v * bv0
					s11 += v * bv1
					s12 += v * bv2
					s13 += v * bv3
					v = a2[p]
					s20 += v * bv0
					s21 += v * bv1
					s22 += v * bv2
					s23 += v * bv3
					v = a3[p]
					s30 += v * bv0
					s31 += v * bv1
					s32 += v * bv2
					s33 += v * bv3
				}
				c0[j] += s00
				c0[j+1] += s01
				c0[j+2] += s02
				c0[j+3] += s03
				c1[j] += s10
				c1[j+1] += s11
				c1[j+2] += s12
				c1[j+3] += s13
				c2[j] += s20
				c2[j+1] += s21
				c2[j+2] += s22
				c2[j+3] += s23
				c3[j] += s30
				c3[j+1] += s31
				c3[j+2] += s32
				c3[j+3] += s33
			}
			for ; j < n; j++ {
				bj := b[j*k+pc : j*k+pe]
				var s0, s1, s2, s3 float64
				for p := 0; p < len(bj); p++ {
					bv := bj[p]
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				c0[j] += s0
				c1[j] += s1
				c2[j] += s2
				c3[j] += s3
			}
		}
		for ; i < i1; i++ {
			a0 := a[i*k+pc : i*k+pe]
			c0 := c[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b[j*k+pc : j*k+pe]
				b1 := b[(j+1)*k+pc : (j+1)*k+pe]
				b2 := b[(j+2)*k+pc : (j+2)*k+pe]
				b3 := b[(j+3)*k+pc : (j+3)*k+pe]
				var s0, s1, s2, s3 float64
				for p := 0; p < len(a0); p++ {
					v := a0[p]
					s0 += v * b0[p]
					s1 += v * b1[p]
					s2 += v * b2[p]
					s3 += v * b3[p]
				}
				c0[j] += s0
				c0[j+1] += s1
				c0[j+2] += s2
				c0[j+3] += s3
			}
			for ; j < n; j++ {
				bj := b[j*k+pc : j*k+pe]
				s := 0.0
				for p := 0; p < len(bj); p++ {
					s += a0[p] * bj[p]
				}
				c0[j] += s
			}
		}
	}
}

// gemmTBRowsFMA computes rows [i0,i1) of c += a @ bᵀ with the quad-dot
// assembly kernel: one row of A against four rows of B per call, all
// contiguous. Rows must be pre-zeroed unless accumulating.
func gemmTBRowsFMA(c, a, b []float64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		ar := a[i*k : (i+1)*k]
		cr := c[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s0, s1, s2, s3 := fmaDot4(&ar[0],
				&b[j*k], &b[(j+1)*k], &b[(j+2)*k], &b[(j+3)*k], k)
			cr[j] += s0
			cr[j+1] += s1
			cr[j+2] += s2
			cr[j+3] += s3
		}
		for ; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ar {
				s += av * bj[p]
			}
			cr[j] += s
		}
	}
}

// MatMulTransposeA computes c += aᵀ @ b where a is (k×m) and b is (k×n),
// accumulating into the existing (m×n) tensor c (callers zero it if needed;
// accumulation is what weight-gradient computation wants across batches).
func MatMulTransposeA(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || b.Dim(0) != a.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTransposeA shape mismatch %v x %v", a.shape, b.shape))
	}
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	if c.Rank() != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: MatMulTransposeA output shape mismatch")
	}
	if helpers := planHelpers(m, m*k*n); helpers > 0 {
		runRows(helpers, m, func(i0, i1 int) {
			gemmTARows(c.Data, a.Data, b.Data, k, m, n, i0, i1)
		})
		return
	}
	gemmTARows(c.Data, a.Data, b.Data, k, m, n, 0, m)
}

// gemmTARows accumulates rows [i0,i1) of c += aᵀ @ b (saxpy form: for each
// reduction step p, the B row p is streamed into four C rows at once; rows
// of C index columns of A, so the four A values sit contiguously).
func gemmTARows(c, a, b []float64, k, m, n, i0, i1 int) {
	if simdEnabled {
		gemmTARowsFMA(c, a, b, k, m, n, i0, i1)
		return
	}
	for jc := 0; jc < n; jc += gemmNC {
		je := min(jc+gemmNC, n)
		i := i0
		for ; i+gemmMR <= i1; i += gemmMR {
			c0 := c[i*n+jc : i*n+je]
			c1 := c[(i+1)*n+jc : (i+1)*n+je]
			c2 := c[(i+2)*n+jc : (i+2)*n+je]
			c3 := c[(i+3)*n+jc : (i+3)*n+je]
			for p := 0; p < k; p++ {
				ap := a[p*m+i : p*m+i+4 : p*m+i+4]
				a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
				br := b[p*n+jc : p*n+je]
				for j, bv := range br {
					c0[j] += a0 * bv
					c1[j] += a1 * bv
					c2[j] += a2 * bv
					c3[j] += a3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			cr := c[i*n+jc : i*n+je]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				br := b[p*n+jc : p*n+je]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	}
}

// gemmTARowsFMA accumulates rows [i0,i1) of c += aᵀ @ b with the quad-axpy
// assembly kernel; the four A values per reduction step sit contiguously
// (they are adjacent columns of one A row).
func gemmTARowsFMA(c, a, b []float64, k, m, n, i0, i1 int) {
	for jc := 0; jc < n; jc += gemmNC {
		je := min(jc+gemmNC, n)
		w := je - jc
		i := i0
		for ; i+gemmMR <= i1; i += gemmMR {
			c0 := c[i*n+jc : i*n+je]
			c1 := c[(i+1)*n+jc : (i+1)*n+je]
			c2 := c[(i+2)*n+jc : (i+2)*n+je]
			c3 := c[(i+3)*n+jc : (i+3)*n+je]
			for p := 0; p < k; p++ {
				ap := a[p*m+i : p*m+i+4 : p*m+i+4]
				br := b[p*n+jc : p*n+je]
				fmaAxpy4(&c0[0], &c1[0], &c2[0], &c3[0], &br[0], w,
					ap[0], ap[1], ap[2], ap[3])
			}
		}
		for ; i < i1; i++ {
			cr := c[i*n+jc : i*n+je]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				br := b[p*n+jc : p*n+je]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	}
}
