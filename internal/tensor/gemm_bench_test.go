package tensor

import (
	"fmt"
	"testing"

	"adafl/internal/stats"
)

// The benchmark shapes are the GEMMs the paper CNN actually runs per
// sample (see internal/nn/zoo.go): conv1 lowers to (20×25)@(25×576),
// conv2 to (50×500)@(500×64), the dense head to (N×800)@(800×500); the
// 32-row variant models a batched im2col GEMM.
var gemmShapes = []struct{ m, k, n int }{
	{20, 25, 576},  // conv1: OutC × CKK × OH·OW
	{50, 500, 64},  // conv2
	{32, 500, 576}, // batched conv-shape GEMM
	{8, 800, 500},  // dense head, batch 8
}

func randMat(m, n int, seed uint64) *Tensor {
	t := New(m, n)
	t.RandNorm(stats.NewRNG(seed), 1)
	return t
}

// BenchmarkMatMul measures the production MatMulInto kernel at the
// paper-CNN shapes (single-threaded; the parallel path is gated off by
// the worker budget during benchmarks).
func BenchmarkMatMul(b *testing.B) {
	for _, s := range gemmShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			old := MatMulWorkers()
			SetMatMulWorkers(1)
			defer SetMatMulWorkers(old)
			a := randMat(s.m, s.k, 1)
			bb := randMat(s.k, s.n, 2)
			c := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(c, a, bb)
			}
		})
	}
}

// BenchmarkMatMulNaive measures the retained seed kernel (the naive
// i-p-j loop) at the same shapes, so every PR can verify the blocked
// kernel's speedup without checking out the seed.
func BenchmarkMatMulNaive(b *testing.B) {
	for _, s := range gemmShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := randMat(s.m, s.k, 1)
			bb := randMat(s.k, s.n, 2)
			c := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				naiveMatMulInto(c, a, bb)
			}
		})
	}
}

// BenchmarkMatMulParallel measures the row-parallel path with a forced
// worker budget of 4, at the largest bench shape.
func BenchmarkMatMulParallel(b *testing.B) {
	old := MatMulWorkers()
	SetMatMulWorkers(4)
	defer SetMatMulWorkers(old)
	s := gemmShapes[2]
	a := randMat(s.m, s.k, 1)
	bb := randMat(s.k, s.n, 2)
	c := New(s.m, s.n)
	b.SetBytes(int64(8 * s.m * s.k * s.n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, a, bb)
	}
}

// BenchmarkMatMulTransposeA/B cover the backward-pass kernels at the
// conv2 weight-gradient and dense input-gradient shapes.
func BenchmarkMatMulTransposeA(b *testing.B) {
	// dcols = Wᵀ @ g: a (50×500), b (50×64) -> c (500×64)
	a := randMat(50, 500, 1)
	g := randMat(50, 64, 2)
	c := New(500, 64)
	b.SetBytes(int64(8 * 50 * 500 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Zero()
		MatMulTransposeA(c, a, g)
	}
}

func BenchmarkMatMulTransposeB(b *testing.B) {
	// dx = gradOut @ Wᵀ: a (8×500), b (800×500) -> c (8×800)
	a := randMat(8, 500, 1)
	w := randMat(800, 500, 2)
	c := New(8, 800)
	b.SetBytes(int64(8 * 8 * 500 * 800))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransposeB(c, a, w)
	}
}
