// Package tensor provides a small dense float64 tensor and the flat-vector
// operations federated learning needs: parameter/gradient arithmetic,
// matrix multiplication for fully-connected layers, and similarity metrics
// for utility scoring.
//
// Tensors are row-major over an explicit shape. The package favours
// in-place operations on pre-allocated buffers because the training loop is
// the hot path of every experiment in this repository.
package tensor

import (
	"fmt"

	"adafl/internal/stats"
)

// Tensor is a dense, row-major multi-dimensional array of float64.
type Tensor struct {
	shape []int
	// Data is the flat backing slice, exposed so hot loops (convolution,
	// codecs) can iterate without bounds-checked accessor calls.
	Data []float64
}

// New allocates a zero-filled tensor with the given shape. A zero-length
// shape yields a scalar tensor holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// RandNorm fills the tensor with N(0, stddev^2) samples from r.
func (t *Tensor) RandNorm(r *stats.RNG, stddev float64) {
	for i := range t.Data {
		t.Data[i] = r.Norm() * stddev
	}
}

// AddInPlace accumulates o into t elementwise. Shapes must match in size.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MatMul computes c = a @ b for 2-D tensors, writing into a freshly
// allocated result. a is (m×k), b is (k×n). The blocked kernels behind
// MatMulInto (see gemm.go) do the work.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	c := New(a.Dim(0), b.Dim(1))
	MatMulInto(c, a, b)
	return c
}
