//go:build !amd64

package tensor

// Non-amd64 builds always use the pure-Go blocked kernels.

func detectSIMD() bool { return false }

func fmaAxpy4(c0, c1, c2, c3, b *float64, n int, a0, a1, a2, a3 float64) {
	panic("tensor: fmaAxpy4 called without SIMD support")
}

func fmaDot4(a, b0, b1, b2, b3 *float64, n int) (s0, s1, s2, s3 float64) {
	panic("tensor: fmaDot4 called without SIMD support")
}
