package tensor

import "sync"

// Scratch-buffer pool. Hot paths that need temporary float64 storage whose
// lifetime is a single call — im2col patch matrices on the concurrent
// evaluation path, codec magnitude scratch — borrow from this pool instead
// of allocating, so steady-state training and evaluation stop exercising
// the garbage collector.

// scratchPool holds *[]float64 so Put does not allocate a fresh interface
// box for the slice header on every call.
var scratchPool = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}

// GetScratch returns a slice of length n with unspecified contents. Callers
// that need zeroed memory must clear it themselves. Return the slice with
// PutScratch when done; never retain it past the call that borrowed it.
func GetScratch(n int) []float64 {
	sp := scratchPool.Get().(*[]float64)
	if cap(*sp) >= n {
		return (*sp)[:n]
	}
	// Too small for this request: recycle the old buffer for smaller
	// callers and allocate at the requested size (rounded up a little so
	// near-miss sizes converge instead of thrashing).
	scratchPool.Put(sp)
	return make([]float64, n, n+n/8)
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	scratchPool.Put(&s)
}
