package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Size() != 24 || len(x.Data) != 24 {
		t.Fatalf("unexpected tensor: rank=%d size=%d", x.Rank(), x.Size())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("unexpected dims: %v", x.Shape())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 0) did not panic")
		}
	}()
	New(2, 0)
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data[1*3+2] != 7 {
		t.Fatal("Set did not write row-major offset")
	}
	if x.At(1, 2) != 7 {
		t.Fatal("At did not read back value")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape view broken: got %v", y.At(2, 1))
	}
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Fatal("reshape should share backing data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestZeroFillScaleAdd(t *testing.T) {
	x := New(3)
	x.Fill(2)
	x.Scale(3)
	y := New(3)
	y.Fill(1)
	x.AddInPlace(y)
	for _, v := range x.Data {
		if v != 7 {
			t.Fatalf("expected 7, got %v", v)
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposeBMatchesExplicit(t *testing.T) {
	r := stats.NewRNG(1)
	a := New(4, 5)
	a.RandNorm(r, 1)
	b := New(3, 5)
	b.RandNorm(r, 1)
	// explicit transpose
	bt := New(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := MatMul(a, bt)
	got := New(4, 3)
	MatMulTransposeB(got, a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransposeAMatchesExplicit(t *testing.T) {
	r := stats.NewRNG(2)
	a := New(6, 4) // (k×m)
	a.RandNorm(r, 1)
	b := New(6, 3) // (k×n)
	b.RandNorm(r, 1)
	at := New(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := MatMul(at, b)
	got := New(4, 3)
	MatMulTransposeA(got, a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatal("Dot failed")
	}
	if Norm2(a) != 5 {
		t.Fatal("Norm2 failed")
	}
}

func TestCosineSimilarityCases(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical cosine = %v, want 1", got)
	}
	neg := []float64{-2, 0}
	if got := CosineSimilarity(a, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite cosine = %v, want -1", got)
	}
	if got := CosineSimilarity(a, []float64{0, 0}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if d := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestAxpyAddSub(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy result %v", y)
	}
	dst := make([]float64, 2)
	AddVec(dst, []float64{1, 2}, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AddVec result %v", dst)
	}
	SubVec(dst, []float64{1, 2}, []float64{10, 20})
	if dst[0] != -9 || dst[1] != -18 {
		t.Fatalf("SubVec result %v", dst)
	}
}

func TestClipNorm(t *testing.T) {
	v := []float64{3, 4}
	s := ClipNorm(v, 1)
	if math.Abs(Norm2(v)-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", Norm2(v))
	}
	if math.Abs(s-0.2) > 1e-12 {
		t.Fatalf("scale = %v, want 0.2", s)
	}
	w := []float64{0.1, 0.1}
	if s := ClipNorm(w, 10); s != 1 {
		t.Fatalf("no-op clip returned scale %v", s)
	}
}

func TestCosineSimilarityScaleInvariantProperty(t *testing.T) {
	f := func(seed uint64, scaleRaw uint16) bool {
		r := stats.NewRNG(seed)
		a := make([]float64, 16)
		b := make([]float64, 16)
		for i := range a {
			a[i] = r.Norm()
			b[i] = r.Norm()
		}
		scale := 0.01 + float64(scaleRaw%1000)
		scaled := CopyVec(a)
		ScaleVec(scaled, scale)
		return math.Abs(CosineSimilarity(a, b)-CosineSimilarity(scaled, b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClipNormNeverIncreasesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := make([]float64, 32)
		for i := range v {
			v[i] = r.Norm() * 10
		}
		before := Norm2(v)
		ClipNorm(v, 5)
		after := Norm2(v)
		return after <= before+1e-9 && after <= 5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulTransposeBAddAccumulates(t *testing.T) {
	r := stats.NewRNG(3)
	a := New(3, 4)
	a.RandNorm(r, 1)
	b := New(2, 4)
	b.RandNorm(r, 1)
	base := New(3, 2)
	base.Fill(10)
	got := base.Clone()
	MatMulTransposeBAdd(got, a, b)
	want := New(3, 2)
	MatMulTransposeB(want, a, b)
	for i := range got.Data {
		if math.Abs(got.Data[i]-(want.Data[i]+10)) > 1e-12 {
			t.Fatalf("accumulation mismatch at %d", i)
		}
	}
}

func TestShapeAccessor(t *testing.T) {
	x := New(2, 5)
	s := x.Shape()
	if len(s) != 2 || s[0] != 2 || s[1] != 5 {
		t.Fatalf("Shape() = %v", s)
	}
}

func TestMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"FromSlice", func() { FromSlice([]float64{1}, 2) }},
		{"Reshape", func() { New(4).Reshape(3) }},
		{"AddInPlace", func() { New(2).AddInPlace(New(3)) }},
		{"Dot", func() { Dot([]float64{1}, []float64{1, 2}) }},
		{"EuclideanDistance", func() { EuclideanDistance([]float64{1}, []float64{1, 2}) }},
		{"Axpy", func() { Axpy(1, []float64{1}, []float64{1, 2}) }},
		{"AddVec", func() { AddVec(make([]float64, 2), []float64{1}, []float64{1, 2}) }},
		{"SubVec", func() { SubVec(make([]float64, 2), []float64{1}, []float64{1, 2}) }},
		{"ClipNorm", func() { ClipNorm([]float64{1}, 0) }},
		{"IndexRank", func() { New(2, 2).At(1) }},
		{"MatMulInto", func() { MatMulInto(New(2, 2), New(2, 3), New(3, 3)) }},
		{"MatMulTransposeB", func() { MatMulTransposeB(New(2, 2), New(2, 3), New(2, 4)) }},
		{"MatMulTransposeBAdd", func() { MatMulTransposeBAdd(New(2, 2), New(2, 3), New(2, 4)) }},
		{"MatMulTransposeA", func() { MatMulTransposeA(New(2, 2), New(3, 2), New(4, 3)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: mismatch did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestCosineSimilarityClampsRounding(t *testing.T) {
	// Nearly parallel vectors can produce |cos| slightly above 1 from
	// floating-point error; the result must be clamped.
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = 1e-7 * float64(i+1)
		b[i] = a[i]
	}
	if c := CosineSimilarity(a, b); c > 1 || c < -1 {
		t.Fatalf("cosine %v out of [-1,1]", c)
	}
}
