package tensor

// Naive reference kernels: the seed implementations of the four matmul
// variants, retained verbatim so the blocked kernels in gemm.go can be
// checked for numerical equivalence (gemm_test.go) and benchmarked for
// speedup (gemm_bench_test.go) without checking out an old revision. They
// must not be called from production code paths.

// naiveMatMulInto computes c = a @ b with the seed's i-p-j loop.
func naiveMatMulInto(c, a, b *Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: naiveMatMulInto output shape mismatch")
	}
	c.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// naiveMatMulTransposeB computes c = a @ bᵀ with the seed's dot loop.
func naiveMatMulTransposeB(c, a, b *Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	if b.Dim(1) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: naiveMatMulTransposeB shape mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			sum := 0.0
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] = sum
		}
	}
}

// naiveMatMulTransposeBAdd computes c += a @ bᵀ.
func naiveMatMulTransposeBAdd(c, a, b *Tensor) {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	if b.Dim(1) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: naiveMatMulTransposeBAdd shape mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			sum := 0.0
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] += sum
		}
	}
}

// naiveMatMulTransposeA computes c += aᵀ @ b with the seed's p-i-j loop.
func naiveMatMulTransposeA(c, a, b *Tensor) {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: naiveMatMulTransposeA shape mismatch")
	}
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
