// AVX2+FMA micro-kernels for the blocked GEMM in gemm.go. Only reached
// when detectSIMD() confirms CPUID support (FMA+AVX2 with OS-saved YMM
// state); every kernel has a pure-Go fallback.

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaAxpy4(c0, c1, c2, c3, b *float64, n int, a0, a1, a2, a3 float64)
//
// The quad-axpy micro-kernel: for j in [0,n)
//	c0[j] += a0*b[j]; c1[j] += a1*b[j]; c2[j] += a2*b[j]; c3[j] += a3*b[j]
// Each loaded vector of b feeds four FMA lanes, so the kernel serves both
// c = a@b (four rows of A against one row of B) and c += aᵀ@b (four
// columns of A against one row of B).
TEXT ·fmaAxpy4(SB), NOSPLIT, $0-80
	MOVQ c0+0(FP), R8
	MOVQ c1+8(FP), R9
	MOVQ c2+16(FP), R10
	MOVQ c3+24(FP), R11
	MOVQ b+32(FP), SI
	MOVQ n+40(FP), CX
	VBROADCASTSD a0+48(FP), Y0
	VBROADCASTSD a1+56(FP), Y1
	VBROADCASTSD a2+64(FP), Y2
	VBROADCASTSD a3+72(FP), Y3

loop4:
	CMPQ CX, $4
	JLT  tail
	VMOVUPD (SI), Y4
	VMOVUPD (R8), Y5
	VFMADD231PD Y4, Y0, Y5
	VMOVUPD Y5, (R8)
	VMOVUPD (R9), Y6
	VFMADD231PD Y4, Y1, Y6
	VMOVUPD Y6, (R9)
	VMOVUPD (R10), Y7
	VFMADD231PD Y4, Y2, Y7
	VMOVUPD Y7, (R10)
	VMOVUPD (R11), Y8
	VFMADD231PD Y4, Y3, Y8
	VMOVUPD Y8, (R11)
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $4, CX
	JMP  loop4

tail:
	TESTQ CX, CX
	JE   done
tailloop:
	VMOVSD (SI), X4
	VMOVSD (R8), X5
	VFMADD231SD X4, X0, X5
	VMOVSD X5, (R8)
	VMOVSD (R9), X6
	VFMADD231SD X4, X1, X6
	VMOVSD X6, (R9)
	VMOVSD (R10), X7
	VFMADD231SD X4, X2, X7
	VMOVSD X7, (R10)
	VMOVSD (R11), X8
	VFMADD231SD X4, X3, X8
	VMOVSD X8, (R11)
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNE  tailloop

done:
	VZEROUPPER
	RET

// func fmaDot4(a, b0, b1, b2, b3 *float64, n int) (s0, s1, s2, s3 float64)
//
// Four simultaneous dot products of one row of A against four rows of B
// (all contiguous), the inner kernel of c = a@bᵀ. Four independent vector
// accumulators keep the FMA pipeline full; lanes are reduced at the end,
// then a scalar tail handles n%4.
TEXT ·fmaDot4(SB), NOSPLIT, $0-80
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

loop4:
	CMPQ CX, $4
	JLT  reduce
	VMOVUPD (SI), Y4
	VMOVUPD (R8), Y5
	VFMADD231PD Y4, Y5, Y0
	VMOVUPD (R9), Y6
	VFMADD231PD Y4, Y6, Y1
	VMOVUPD (R10), Y7
	VFMADD231PD Y4, Y7, Y2
	VMOVUPD (R11), Y8
	VFMADD231PD Y4, Y8, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $4, CX
	JMP  loop4

reduce:
	// Fold each 4-lane accumulator to a scalar in its low lane.
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VUNPCKHPD X0, X0, X4
	VADDSD X4, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPD X5, X1, X1
	VUNPCKHPD X1, X1, X5
	VADDSD X5, X1, X1
	VEXTRACTF128 $1, Y2, X6
	VADDPD X6, X2, X2
	VUNPCKHPD X2, X2, X6
	VADDSD X6, X2, X2
	VEXTRACTF128 $1, Y3, X7
	VADDPD X7, X3, X3
	VUNPCKHPD X3, X3, X7
	VADDSD X7, X3, X3

	TESTQ CX, CX
	JE   store
tailloop:
	VMOVSD (SI), X4
	VMOVSD (R8), X5
	VFMADD231SD X4, X5, X0
	VMOVSD (R9), X5
	VFMADD231SD X4, X5, X1
	VMOVSD (R10), X5
	VFMADD231SD X4, X5, X2
	VMOVSD (R11), X5
	VFMADD231SD X4, X5, X3
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNE  tailloop

store:
	VMOVSD X0, s0+48(FP)
	VMOVSD X1, s1+56(FP)
	VMOVSD X2, s2+64(FP)
	VMOVSD X3, s3+72(FP)
	VZEROUPPER
	RET
