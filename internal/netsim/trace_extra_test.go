package netsim

import (
	"strings"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
)

// Additional trace and network behaviours.

func TestEmptyTraceIsIdentity(t *testing.T) {
	tr := NewTrace()
	for _, tt := range []float64{0, 1, 100} {
		if tr.MultiplierAt(tt) != 1 {
			t.Fatalf("empty trace multiplier %v at %v", tr.MultiplierAt(tt), tt)
		}
	}
}

func TestNewTracePanicsOnNonPositiveMultiplier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero multiplier accepted")
		}
	}()
	NewTrace(TraceStep{At: 0, Multiplier: 0})
}

func TestTraceStepsSortedRegardlessOfInput(t *testing.T) {
	tr := NewTrace(
		TraceStep{At: 20, Multiplier: 3},
		TraceStep{At: 10, Multiplier: 2},
	)
	if tr.MultiplierAt(15) != 2 || tr.MultiplierAt(25) != 3 {
		t.Fatal("unsorted steps not handled")
	}
}

func TestTraceMultiplierPiecewiseConstantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		steps := make([]TraceStep, 5)
		for i := range steps {
			steps[i] = TraceStep{At: r.Float64() * 100, Multiplier: 0.1 + r.Float64()}
		}
		tr := NewTrace(steps...)
		// The multiplier is always one of the step values or 1.
		valid := map[float64]bool{1: true}
		for _, s := range steps {
			valid[s.Multiplier] = true
		}
		for x := 0.0; x < 120; x += 3.7 {
			if !valid[tr.MultiplierAt(x)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNetworkSetLinkValidates(t *testing.T) {
	n := UniformNetwork(2, EthernetLink, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid link accepted")
		}
	}()
	n.SetLink(0, Link{})
}

func TestLinkPresetsValid(t *testing.T) {
	for _, l := range []Link{EthernetLink, WiFiLink, LTELink, ConstrainedLink} {
		if err := l.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	// Presets must be ordered by uplink quality.
	if !(EthernetLink.UpBps > WiFiLink.UpBps &&
		WiFiLink.UpBps > LTELink.UpBps &&
		LTELink.UpBps > ConstrainedLink.UpBps) {
		t.Error("preset ordering broken")
	}
}

func TestBandwidthsReflectTrace(t *testing.T) {
	l := WiFiLink
	l.Trace = NewTrace(TraceStep{At: 10, Multiplier: 0.5})
	upBefore, downBefore := l.Bandwidths(0)
	upAfter, downAfter := l.Bandwidths(20)
	if upAfter != upBefore/2 || downAfter != downBefore/2 {
		t.Fatalf("trace not reflected in Bandwidths: %v/%v -> %v/%v",
			upBefore, downBefore, upAfter, downAfter)
	}
}

func TestDirectionString(t *testing.T) {
	if Uplink.String() != "uplink" || Downlink.String() != "downlink" {
		t.Fatal("direction names wrong")
	}
}

func TestEventQueueLen(t *testing.T) {
	q := NewEventQueue()
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Schedule(1, func() {})
	q.Schedule(2, func() {})
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Step()
	if q.Len() != 1 {
		t.Fatalf("Len after step = %d", q.Len())
	}
}

func TestEventQueueStressOrdering(t *testing.T) {
	q := NewEventQueue()
	r := stats.NewRNG(9)
	var times []float64
	for i := 0; i < 500; i++ {
		at := r.Float64() * 1000
		q.Schedule(at, func() { times = append(times, q.Now()) })
	}
	for q.Step() {
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("events out of order at %d: %v < %v", i, times[i], times[i-1])
		}
	}
	if len(times) != 500 {
		t.Fatalf("ran %d of 500 events", len(times))
	}
}

func TestParseTraceCSVRoundTrip(t *testing.T) {
	orig := NewTrace(
		TraceStep{At: 5, Multiplier: 0.5},
		TraceStep{At: 12, Multiplier: 1.5},
	)
	var buf strings.Builder
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTraceCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 6, 13} {
		if parsed.MultiplierAt(x) != orig.MultiplierAt(x) {
			t.Fatalf("round trip mismatch at %v", x)
		}
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := []string{
		"1",   // missing field
		"a,1", // bad time
		"1,b", // bad multiplier
		"1,0", // non-positive multiplier
	}
	for _, c := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestParseTraceCSVSkipsCommentsAndBlanks(t *testing.T) {
	input := "# comment\n\n10, 0.5\n"
	tr, err := ParseTraceCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.MultiplierAt(11) != 0.5 {
		t.Fatal("comment handling broke parsing")
	}
}
