package netsim

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"adafl/internal/stats"
)

// Trace is a piecewise-constant bandwidth multiplier over simulated time,
// used to reproduce the dynamic network conditions the paper emphasises
// (static compression strategies assume fixed conditions; real links vary).
type Trace struct {
	steps []TraceStep
}

// TraceStep sets the bandwidth multiplier from time At onward.
type TraceStep struct {
	At         float64
	Multiplier float64
}

// NewTrace builds a trace from steps, sorting them by time. Multipliers
// must be positive. An empty trace is the identity.
func NewTrace(steps ...TraceStep) *Trace {
	for _, s := range steps {
		if s.Multiplier <= 0 {
			panic(fmt.Sprintf("netsim: non-positive trace multiplier %v", s.Multiplier))
		}
	}
	sorted := append([]TraceStep(nil), steps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Trace{steps: sorted}
}

// MultiplierAt returns the multiplier in effect at time t (1 before the
// first step).
func (tr *Trace) MultiplierAt(t float64) float64 {
	m := 1.0
	for _, s := range tr.steps {
		if s.At > t {
			break
		}
		m = s.Multiplier
	}
	return m
}

// RandomWalkTrace generates a trace whose multiplier performs a bounded
// geometric random walk in [lo, hi], stepping every period seconds for the
// given horizon. It models slowly varying congestion.
func RandomWalkTrace(rng *stats.RNG, period, horizon, lo, hi float64) *Trace {
	if lo <= 0 || hi < lo || period <= 0 {
		panic("netsim: invalid random walk parameters")
	}
	var steps []TraceStep
	m := (lo + hi) / 2
	for t := 0.0; t < horizon; t += period {
		factor := 1 + 0.3*(rng.Float64()*2-1)
		m *= factor
		if m < lo {
			m = lo
		}
		if m > hi {
			m = hi
		}
		steps = append(steps, TraceStep{At: t, Multiplier: m})
	}
	return NewTrace(steps...)
}

// ParseTraceCSV reads a trace from CSV text with one "time,multiplier"
// pair per line (comments start with '#', blank lines are skipped) —
// letting experiments replay externally recorded bandwidth traces.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	var steps []TraceStep
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("netsim: trace line %d: want time,multiplier", line)
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: %v", line, err)
		}
		mult, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: %v", line, err)
		}
		if mult <= 0 {
			return nil, fmt.Errorf("netsim: trace line %d: non-positive multiplier %v", line, mult)
		}
		steps = append(steps, TraceStep{At: at, Multiplier: mult})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(steps...), nil
}

// WriteCSV emits the trace in the format ParseTraceCSV reads.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# time,multiplier"); err != nil {
		return err
	}
	for _, s := range tr.steps {
		if _, err := fmt.Fprintf(w, "%g,%g\n", s.At, s.Multiplier); err != nil {
			return err
		}
	}
	return nil
}

// DiurnalTrace generates a raised-cosine day/night bandwidth multiplier:
// the multiplier swings between hi (peak, at t = 0) and lo (trough, half a
// period later), sampled into a piecewise-constant step every step seconds
// for horizon seconds. It models the diurnal congestion wave the scenario
// engine's bandwidth model rides on.
func DiurnalTrace(period, lo, hi, step, horizon float64) *Trace {
	if lo <= 0 || hi < lo || period <= 0 || step <= 0 {
		panic("netsim: invalid diurnal parameters")
	}
	var steps []TraceStep
	for t := 0.0; t < horizon; t += step {
		phase := 2 * math.Pi * t / period
		m := lo + (hi-lo)*(1+math.Cos(phase))/2
		steps = append(steps, TraceStep{At: t, Multiplier: m})
	}
	return NewTrace(steps...)
}

// OutageTrace generates a trace that periodically collapses bandwidth to
// floor (e.g. 0.05) for outageDur seconds every interval seconds.
func OutageTrace(interval, outageDur, floor, horizon float64) *Trace {
	if floor <= 0 || interval <= 0 || outageDur <= 0 || outageDur >= interval {
		panic("netsim: invalid outage parameters")
	}
	var steps []TraceStep
	for t := interval; t < horizon; t += interval {
		steps = append(steps, TraceStep{At: t, Multiplier: floor})
		steps = append(steps, TraceStep{At: t + outageDur, Multiplier: 1})
	}
	return NewTrace(steps...)
}
