// Package netsim is a discrete-event network simulator standing in for the
// paper's ns-3 (ns3-fl) setup. It models per-client uplink/downlink
// bandwidth, propagation latency, jitter, probabilistic loss and
// time-varying bandwidth traces, and exposes exactly what the FL engine
// needs: the completion time (or failure) of a transfer of a given size
// starting at a given simulated time.
package netsim

import (
	"fmt"

	"adafl/internal/stats"
)

// Link describes one client's connection to the server.
type Link struct {
	// UpBps and DownBps are uplink/downlink bandwidths in bytes per second.
	UpBps, DownBps float64
	// LatencyS is the one-way propagation delay in seconds.
	LatencyS float64
	// JitterS is the standard deviation of additional normal-distributed
	// delay (truncated at zero) applied per transfer.
	JitterS float64
	// LossProb is the probability that a transfer fails entirely and must
	// be treated as dropped by the protocol layer.
	LossProb float64
	// Trace optionally modulates bandwidth over time; nil means static.
	Trace *Trace
}

// Validate reports whether the link parameters are physically meaningful.
func (l Link) Validate() error {
	if l.UpBps <= 0 || l.DownBps <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth (up=%v down=%v)", l.UpBps, l.DownBps)
	}
	if l.LatencyS < 0 || l.JitterS < 0 {
		return fmt.Errorf("netsim: negative latency/jitter")
	}
	if l.LossProb < 0 || l.LossProb >= 1 {
		return fmt.Errorf("netsim: loss probability %v out of [0,1)", l.LossProb)
	}
	return nil
}

// Direction selects uplink or downlink.
type Direction int

// Transfer directions.
const (
	Uplink Direction = iota
	Downlink
)

func (d Direction) String() string {
	if d == Uplink {
		return "uplink"
	}
	return "downlink"
}

// bandwidthAt returns the effective bandwidth for a transfer starting at
// time now, applying the trace multiplier if present.
func (l Link) bandwidthAt(d Direction, now float64) float64 {
	base := l.UpBps
	if d == Downlink {
		base = l.DownBps
	}
	if l.Trace != nil {
		base *= l.Trace.MultiplierAt(now)
	}
	return base
}

// TransferTime returns the simulated duration of moving size bytes in
// direction d starting at now, and whether the transfer was lost. rng
// drives jitter and loss; pass a client-specific stream for reproducibility.
func (l Link) TransferTime(d Direction, size int, now float64, rng *stats.RNG) (dur float64, lost bool) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	if rng != nil && l.LossProb > 0 && rng.Float64() < l.LossProb {
		return 0, true
	}
	bw := l.bandwidthAt(d, now)
	dur = l.LatencyS + float64(size)/bw
	if rng != nil && l.JitterS > 0 {
		j := rng.Norm() * l.JitterS
		if j > 0 {
			dur += j
		}
	}
	return dur, false
}

// Bandwidths returns the current (up, down) bandwidths at time now, which
// the AdaFL utility score consumes.
func (l Link) Bandwidths(now float64) (up, down float64) {
	return l.bandwidthAt(Uplink, now), l.bandwidthAt(Downlink, now)
}

// Common link presets (bytes per second) modelled after the paper's
// embedded-device setting.
var (
	// EthernetLink approximates a wired 100 Mbit/s connection.
	EthernetLink = Link{UpBps: 12.5e6, DownBps: 12.5e6, LatencyS: 0.002}
	// WiFiLink approximates a mid-quality 802.11 connection.
	WiFiLink = Link{UpBps: 2.5e6, DownBps: 5e6, LatencyS: 0.01, JitterS: 0.005}
	// LTELink approximates a cellular uplink-constrained connection.
	LTELink = Link{UpBps: 0.625e6, DownBps: 2.5e6, LatencyS: 0.05, JitterS: 0.02}
	// ConstrainedLink approximates the degraded conditions of the paper's
	// empirical study (severely limited uplink, lossy).
	ConstrainedLink = Link{UpBps: 0.125e6, DownBps: 0.5e6, LatencyS: 0.1, JitterS: 0.05, LossProb: 0.05}
)
