package netsim

import (
	"container/heap"
	"fmt"

	"adafl/internal/stats"
)

// Network bundles the per-client links of a federation together with
// per-client RNG streams, providing the FL engines a single object to ask
// "when would this transfer complete?".
type Network struct {
	links []Link
	rngs  []*stats.RNG
}

// NewNetwork builds a network over the given client links, deriving one
// jitter/loss RNG stream per client from seed.
func NewNetwork(links []Link, seed uint64) *Network {
	root := stats.NewRNG(seed)
	n := &Network{links: append([]Link(nil), links...), rngs: make([]*stats.RNG, len(links))}
	for i := range links {
		if err := links[i].Validate(); err != nil {
			panic(fmt.Sprintf("netsim: client %d: %v", i, err))
		}
		n.rngs[i] = root.Split()
	}
	return n
}

// NumClients returns the number of attached clients.
func (n *Network) NumClients() int { return len(n.links) }

// Link returns client i's link description.
func (n *Network) Link(i int) Link { return n.links[i] }

// SetLink replaces client i's link (e.g. when a device roams networks).
func (n *Network) SetLink(i int, l Link) {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	n.links[i] = l
}

// Transfer returns the duration of a size-byte transfer for client i in
// direction d starting at now, and whether it was lost.
func (n *Network) Transfer(i int, d Direction, size int, now float64) (dur float64, lost bool) {
	return n.links[i].TransferTime(d, size, now, n.rngs[i])
}

// Bandwidths returns client i's effective (up, down) bandwidth at now.
func (n *Network) Bandwidths(i int, now float64) (up, down float64) {
	return n.links[i].Bandwidths(now)
}

// UniformNetwork builds a network where every client has the same link.
func UniformNetwork(numClients int, l Link, seed uint64) *Network {
	links := make([]Link, numClients)
	for i := range links {
		links[i] = l
	}
	return NewNetwork(links, seed)
}

// HeterogeneousNetwork builds a network where a fraction of clients (the
// first ⌈frac·N⌉ after a seeded shuffle) get the constrained link and the
// rest get the good link. It returns the network and the constrained set.
func HeterogeneousNetwork(numClients int, frac float64, good, constrained Link, seed uint64) (*Network, []int) {
	if frac < 0 || frac > 1 {
		panic("netsim: fraction out of range")
	}
	r := stats.NewRNG(seed)
	perm := r.Perm(numClients)
	numBad := int(frac*float64(numClients) + 0.5)
	links := make([]Link, numClients)
	for i := range links {
		links[i] = good
	}
	bad := make([]int, 0, numBad)
	for _, idx := range perm[:numBad] {
		links[idx] = constrained
		bad = append(bad, idx)
	}
	return NewNetwork(links, seed+1), bad
}

// Event is a scheduled callback in simulated time.
type Event struct {
	Time float64
	// Seq breaks ties deterministically (FIFO for equal times).
	Seq int
	Fn  func()
}

// EventQueue is a min-heap of events ordered by (Time, Seq). It is the
// core of the asynchronous FL engines.
type EventQueue struct {
	h   eventHeap
	seq int
	now float64
}

// NewEventQueue returns an empty queue at time 0.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Now returns the current simulated time (the time of the last popped
// event, or 0).
func (q *EventQueue) Now() float64 { return q.now }

// Schedule enqueues fn to run at time t. Scheduling in the past panics:
// that is always a protocol bug.
func (q *EventQueue) Schedule(t float64, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", t, q.now))
	}
	q.seq++
	heap.Push(&q.h, &Event{Time: t, Seq: q.seq, Fn: fn})
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// Step pops and runs the earliest event, advancing Now. It reports whether
// an event was available.
func (q *EventQueue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.Time
	e.Fn()
	return true
}

// RunUntil processes events until the queue is empty or the next event is
// after deadline. Events scheduled during execution participate.
func (q *EventQueue) RunUntil(deadline float64) {
	for q.h.Len() > 0 && q.h[0].Time <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
