package netsim

import (
	"math"
	"strings"
	"testing"
)

// Table-driven edge coverage for the trace layer the scenario engine
// builds on: CSV parsing of malformed rows, outage boundary instants, and
// MultiplierAt outside the stepped range.

func TestParseTraceCSVEdges(t *testing.T) {
	cases := []struct {
		name  string
		input string
		ok    bool
		// probe/want check one multiplier when parsing succeeds.
		probe float64
		want  float64
	}{
		{"empty file", "", true, 5, 1},
		{"comments only", "# a\n# b\n", true, 5, 1},
		{"blank lines only", "\n\n\n", true, 5, 1},
		{"single row", "10,0.5\n", true, 11, 0.5},
		{"out-of-order timestamps sorted", "20,0.25\n10,0.5\n", true, 15, 0.5},
		{"out-of-order later step wins", "20,0.25\n10,0.5\n", true, 25, 0.25},
		{"missing field", "10\n", false, 0, 0},
		{"three fields", "10,0.5,extra\n", false, 0, 0},
		{"bad time", "x,0.5\n", false, 0, 0},
		{"bad multiplier", "10,y\n", false, 0, 0},
		{"zero multiplier", "10,0\n", false, 0, 0},
		{"negative multiplier", "10,-1\n", false, 0, 0},
		{"whitespace tolerated", "  10 , 0.5  \n", true, 11, 0.5},
	}
	for _, c := range cases {
		tr, err := ParseTraceCSV(strings.NewReader(c.input))
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
			continue
		}
		if err == nil && tr.MultiplierAt(c.probe) != c.want {
			t.Errorf("%s: MultiplierAt(%v) = %v, want %v",
				c.name, c.probe, tr.MultiplierAt(c.probe), c.want)
		}
	}
}

func TestParseTraceCSVErrorNamesLine(t *testing.T) {
	_, err := ParseTraceCSV(strings.NewReader("1,0.5\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}

func TestOutageTraceBoundaryInstants(t *testing.T) {
	// Outage every 100 s lasting 10 s at floor 0.05.
	tr := OutageTrace(100, 10, 0.05, 300)
	cases := []struct {
		at   float64
		want float64
	}{
		{0, 1},          // before the first outage
		{99.999, 1},     // instant before onset
		{100, 0.05},     // onset instant: step is inclusive at At
		{105, 0.05},     // mid-outage
		{109.999, 0.05}, // instant before recovery
		{110, 1},        // recovery instant
		{200, 0.05},     // second outage onset
		{210, 1},        // second recovery
		{299.999999, 1}, // end of horizon
		{1e9, 1},        // far past the horizon: last step was a recovery
	}
	for _, c := range cases {
		if got := tr.MultiplierAt(c.at); got != c.want {
			t.Errorf("MultiplierAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestOutageTraceInvalidParamsPanic(t *testing.T) {
	cases := []struct {
		name                                string
		interval, outageDur, floor, horizon float64
	}{
		{"zero floor", 100, 10, 0, 300},
		{"zero interval", 0, 10, 0.05, 300},
		{"zero duration", 100, 0, 0.05, 300},
		{"duration >= interval", 100, 100, 0.05, 300},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			OutageTrace(c.interval, c.outageDur, c.floor, c.horizon)
		}()
	}
}

func TestMultiplierAtBeforeFirstAndAfterLastStep(t *testing.T) {
	tr := NewTrace(
		TraceStep{At: 10, Multiplier: 0.5},
		TraceStep{At: 20, Multiplier: 2},
	)
	cases := []struct {
		at   float64
		want float64
	}{
		{-1e9, 1},  // far before the first step: identity
		{9.999, 1}, // just before the first step
		{10, 0.5},  // exactly at the first step
		{19.999, 0.5},
		{20, 2},  // exactly at the last step
		{1e9, 2}, // far after the last step: last multiplier holds
	}
	for _, c := range cases {
		if got := tr.MultiplierAt(c.at); got != c.want {
			t.Errorf("MultiplierAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestDiurnalTraceShape(t *testing.T) {
	// 100 s period between 0.2 and 1.0, stepped every second.
	tr := DiurnalTrace(100, 0.2, 1.0, 1, 200)
	if got := tr.MultiplierAt(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("peak at t=0: %v", got)
	}
	if got := tr.MultiplierAt(50); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("trough at half period: %v", got)
	}
	// Every sampled multiplier stays within [lo, hi].
	for x := 0.0; x < 250; x += 0.7 {
		m := tr.MultiplierAt(x)
		if m < 0.2-1e-12 || m > 1.0+1e-12 {
			t.Fatalf("multiplier %v at %v outside [0.2, 1.0]", m, x)
		}
	}
}

func TestDiurnalTraceInvalidParamsPanic(t *testing.T) {
	cases := []struct {
		name                     string
		period, lo, hi, step, hz float64
	}{
		{"zero lo", 100, 0, 1, 1, 200},
		{"hi below lo", 100, 1, 0.5, 1, 200},
		{"zero period", 0, 0.2, 1, 1, 200},
		{"zero step", 100, 0.2, 1, 0, 200},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			DiurnalTrace(c.period, c.lo, c.hi, c.step, c.hz)
		}()
	}
}
