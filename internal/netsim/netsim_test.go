package netsim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adafl/internal/stats"
)

func TestLinkTransferTimeDeterministicPart(t *testing.T) {
	l := Link{UpBps: 1000, DownBps: 2000, LatencyS: 0.5}
	dur, lost := l.TransferTime(Uplink, 1000, 0, nil)
	if lost {
		t.Fatal("lossless link dropped")
	}
	if math.Abs(dur-1.5) > 1e-12 {
		t.Fatalf("uplink dur = %v, want 1.5", dur)
	}
	dur, _ = l.TransferTime(Downlink, 1000, 0, nil)
	if math.Abs(dur-1.0) > 1e-12 {
		t.Fatalf("downlink dur = %v, want 1.0", dur)
	}
}

func TestLinkZeroSizeIsLatencyOnly(t *testing.T) {
	l := Link{UpBps: 1000, DownBps: 1000, LatencyS: 0.25}
	dur, _ := l.TransferTime(Uplink, 0, 0, nil)
	if dur != 0.25 {
		t.Fatalf("zero-size transfer dur = %v", dur)
	}
}

func TestLinkLossProbability(t *testing.T) {
	l := Link{UpBps: 1000, DownBps: 1000, LossProb: 0.3}
	r := stats.NewRNG(1)
	lostCount := 0
	for i := 0; i < 10000; i++ {
		if _, lost := l.TransferTime(Uplink, 10, 0, r); lost {
			lostCount++
		}
	}
	frac := float64(lostCount) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("loss fraction %v, want ~0.3", frac)
	}
}

func TestLinkJitterNonNegative(t *testing.T) {
	l := Link{UpBps: 1e6, DownBps: 1e6, LatencyS: 0.1, JitterS: 0.05}
	r := stats.NewRNG(2)
	base := 0.1 + 100.0/1e6
	for i := 0; i < 1000; i++ {
		dur, _ := l.TransferTime(Uplink, 100, 0, r)
		if dur < base-1e-12 {
			t.Fatalf("jitter reduced duration below base: %v < %v", dur, base)
		}
	}
}

func TestLinkValidate(t *testing.T) {
	good := Link{UpBps: 1, DownBps: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	bad := []Link{
		{UpBps: 0, DownBps: 1},
		{UpBps: 1, DownBps: 1, LatencyS: -1},
		{UpBps: 1, DownBps: 1, LossProb: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestTraceMultiplier(t *testing.T) {
	tr := NewTrace(TraceStep{At: 10, Multiplier: 0.5}, TraceStep{At: 20, Multiplier: 2})
	cases := []struct{ t, want float64 }{{0, 1}, {9.9, 1}, {10, 0.5}, {15, 0.5}, {20, 2}, {100, 2}}
	for _, c := range cases {
		if got := tr.MultiplierAt(c.t); got != c.want {
			t.Errorf("MultiplierAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceAffectsTransfer(t *testing.T) {
	tr := NewTrace(TraceStep{At: 100, Multiplier: 0.1})
	l := Link{UpBps: 1000, DownBps: 1000, Trace: tr}
	before, _ := l.TransferTime(Uplink, 1000, 0, nil)
	after, _ := l.TransferTime(Uplink, 1000, 150, nil)
	if math.Abs(before-1) > 1e-12 || math.Abs(after-10) > 1e-12 {
		t.Fatalf("trace not applied: before=%v after=%v", before, after)
	}
}

func TestRandomWalkTraceBounded(t *testing.T) {
	tr := RandomWalkTrace(stats.NewRNG(3), 1, 100, 0.2, 3)
	for tt := 0.0; tt < 100; tt += 0.5 {
		m := tr.MultiplierAt(tt)
		if m < 0.2-1e-12 && tt >= 0 { // before first step multiplier is 1, within bounds anyway
			t.Fatalf("walk below floor at %v: %v", tt, m)
		}
		if m > 3+1e-12 {
			t.Fatalf("walk above ceiling at %v: %v", tt, m)
		}
	}
}

func TestOutageTrace(t *testing.T) {
	tr := OutageTrace(10, 2, 0.05, 50)
	if tr.MultiplierAt(5) != 1 {
		t.Fatal("multiplier before outage not 1")
	}
	if tr.MultiplierAt(11) != 0.05 {
		t.Fatal("multiplier during outage not floor")
	}
	if tr.MultiplierAt(13) != 1 {
		t.Fatal("multiplier after outage not restored")
	}
}

func TestNetworkPerClientStreams(t *testing.T) {
	n := UniformNetwork(3, Link{UpBps: 1e6, DownBps: 1e6, JitterS: 0.1, LatencyS: 0.1}, 7)
	// Different clients should observe different jitter sequences.
	d0, _ := n.Transfer(0, Uplink, 1000, 0)
	d1, _ := n.Transfer(1, Uplink, 1000, 0)
	if d0 == d1 {
		t.Fatal("clients share jitter stream")
	}
}

func TestHeterogeneousNetworkFraction(t *testing.T) {
	n, bad := HeterogeneousNetwork(10, 0.2, EthernetLink, ConstrainedLink, 1)
	if len(bad) != 2 {
		t.Fatalf("constrained set size %d, want 2", len(bad))
	}
	for _, idx := range bad {
		if n.Link(idx).UpBps != ConstrainedLink.UpBps {
			t.Fatal("constrained index has good link")
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var order []int
	q.Schedule(3, func() { order = append(order, 3) })
	q.Schedule(1, func() { order = append(order, 1) })
	q.Schedule(2, func() { order = append(order, 2) })
	for q.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if q.Now() != 3 {
		t.Fatalf("Now = %v, want 3", q.Now())
	}
}

func TestEventQueueFIFOTies(t *testing.T) {
	q := NewEventQueue()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(1, func() { order = append(order, i) })
	}
	for q.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestEventQueueCascade(t *testing.T) {
	q := NewEventQueue()
	count := 0
	var spawn func()
	spawn = func() {
		count++
		if count < 5 {
			q.Schedule(q.Now()+1, spawn)
		}
	}
	q.Schedule(0, spawn)
	q.RunUntil(100)
	if count != 5 {
		t.Fatalf("cascade ran %d times, want 5", count)
	}
	if q.Now() != 100 {
		t.Fatalf("RunUntil left Now at %v", q.Now())
	}
}

func TestEventQueueRunUntilStopsAtDeadline(t *testing.T) {
	q := NewEventQueue()
	ran := false
	q.Schedule(10, func() { ran = true })
	q.RunUntil(5)
	if ran {
		t.Fatal("event past deadline executed")
	}
	if q.Len() != 1 {
		t.Fatal("pending event lost")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(5, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(1, func() {})
}

// Property: transfer time is monotone in size for a lossless jitter-free link.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(up uint32, sizes []uint16) bool {
		l := Link{UpBps: float64(up%100000) + 1, DownBps: 1, LatencyS: 0.01}
		sorted := append([]uint16(nil), sizes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := -1.0
		for _, s := range sorted {
			d, _ := l.TransferTime(Uplink, int(s), 0, nil)
			if d < prev-1e-12 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
