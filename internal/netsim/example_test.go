package netsim_test

import (
	"fmt"

	"adafl/internal/netsim"
)

// ExampleLink_TransferTime shows deterministic transfer-time computation
// (no jitter/loss RNG supplied).
func ExampleLink_TransferTime() {
	link := netsim.Link{UpBps: 1e6, DownBps: 4e6, LatencyS: 0.05}
	up, _ := link.TransferTime(netsim.Uplink, 2_000_000, 0, nil)
	down, _ := link.TransferTime(netsim.Downlink, 2_000_000, 0, nil)
	fmt.Printf("uplink: %.2fs  downlink: %.2fs\n", up, down)
	// Output: uplink: 2.05s  downlink: 0.55s
}

// ExampleTrace shows a bandwidth trace degrading a link mid-experiment.
func ExampleTrace() {
	link := netsim.Link{UpBps: 1e6, DownBps: 1e6}
	link.Trace = netsim.NewTrace(netsim.TraceStep{At: 10, Multiplier: 0.25})

	before, _ := link.TransferTime(netsim.Uplink, 1_000_000, 5, nil)
	after, _ := link.TransferTime(netsim.Uplink, 1_000_000, 15, nil)
	fmt.Printf("before outage: %.0fs  during: %.0fs\n", before, after)
	// Output: before outage: 1s  during: 4s
}
