// Command flclient runs one AdaFL federation client over TCP.
//
// The client synthesises its data shard locally from the shared seed (the
// same non-IID partition the server expects), trains on its own device,
// scores its updates, and uploads only when selected — with the
// compression ratio the server assigned. Use -upbps with -throttle to
// emulate a constrained embedded uplink on a real socket.
//
// With -async the client instead cycles pull→train→push against an
// flserver -async session with no round barrier; -session picks a named
// session on a multi-session server.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/scenario"
	"adafl/internal/stats"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	id := flag.Int("id", 0, "client id (0-based, unique)")
	clients := flag.Int("clients", 3, "total federation size (must match server)")
	seed := flag.Uint64("seed", 1, "shared experiment seed (must match server)")
	imgSize := flag.Int("imgsize", 16, "synthetic image size (must match server)")
	samples := flag.Int("samples", 2000, "total synthetic samples (must match server)")
	iid := flag.Bool("iid", false, "IID partition instead of 2-shard non-IID")
	upbps := flag.Float64("upbps", 2.5e6, "uplink bandwidth reported into the utility score (B/s)")
	downbps := flag.Float64("downbps", 5e6, "downlink bandwidth reported into the utility score (B/s)")
	throttle := flag.Bool("throttle", false, "actually rate-limit the uplink socket to -upbps")
	steps := flag.Int("steps", 4, "local SGD steps per round")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	retries := flag.Int("retries", 3, "consecutive failed redial attempts tolerated (budget resets once a connection makes progress)")
	backoff := flag.Duration("retry-backoff", 200*time.Millisecond, "initial redial backoff window; doubles per attempt, each wait drawn uniformly from it (full jitter)")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the debug HTTP server (/metrics, /healthz, /debug/pprof); empty disables it")
	wire := flag.String("wire", "binary", "wire codec: binary negotiates the zero-copy codec and falls back to gob if the server declines; gob skips negotiation")
	codec := flag.String("codec", "", "uplink codec: dgc, dadaquant, qsgd, terngrad, topk or identity (default dgc in sync mode, topk in async mode); a negotiated server assignment overrides it per round")
	async := flag.Bool("async", false, "buffered-asynchronous mode: cycle pull→train→push with no round barrier against an flserver -async session")
	sessionName := flag.String("session", "", "named session to join on a multi-session server (empty joins the default session)")
	asyncRatio := flag.Float64("async-ratio", 1, "async mode: uplink compression ratio (1 sends the exact delta)")
	scenarioPath := flag.String("scenario", "", "declarative scenario file (must match the server's): shapes this client's reported bandwidth per round by its device class and the scenario's bandwidth trace")
	faults := rpc.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *id < 0 || *id >= *clients {
		log.Fatalf("flclient: id %d out of range [0, %d)", *id, *clients)
	}

	// Rebuild the shared partition and keep only this client's shard.
	ds := dataset.SynthMNIST(*samples, *imgSize, *seed)
	train, _ := ds.Split(0.8, *seed+1)
	var parts []*dataset.Dataset
	if *iid {
		parts = dataset.PartitionIID(train, *clients, *seed+2)
	} else {
		parts = dataset.PartitionShards(train, *clients, 2, *seed+2)
	}
	shard := parts[*id]

	size := *imgSize
	modelSeed := *seed + 3
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}
	cfg := core.DefaultConfig()

	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatalf("flclient %d: metrics server: %v", *id, err)
		}
		defer dbg.Close()
		log.Printf("flclient %d: metrics at http://%s/metrics", *id, dbg.Addr())
	}

	// Under a scenario the reported bandwidth becomes a pure function of
	// the round index — the same function the server's fleet evaluates, so
	// both sides agree without exchanging link state.
	var bandwidth func(round int) (float64, float64)
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flclient %d: %v", *id, err)
		}
		fleet, err := scenario.NewFleet(sc, *clients)
		if err != nil {
			log.Fatalf("flclient %d: %v", *id, err)
		}
		clientID, up, down := *id, *upbps, *downbps
		bandwidth = func(round int) (float64, float64) {
			return fleet.LinkBandwidth(clientID, round, up, down)
		}
		log.Printf("flclient %d: scenario %q, class %s", *id, sc.Name, fleet.ClassName(*id))
	}

	log.Printf("flclient %d: %d local samples, dialing %s", *id, shard.Len(), *addr)
	res, err := rpc.RunClient(rpc.ClientConfig{
		Addr: *addr, ID: *id, Data: shard, NewModel: newModel,
		Async: *async, AsyncRatio: *asyncRatio, Session: *sessionName,
		LocalSteps: *steps, BatchSize: *batch, LR: *lr, Momentum: 0.9,
		Utility: cfg.Utility, UpBps: *upbps, DownBps: *downbps,
		Bandwidth:      bandwidth,
		ThrottleUplink: *throttle,
		Codec:          *codec,
		DGCMomentum:    cfg.DGCMomentum, DGCClip: cfg.DGCClip, DGCMsgClip: cfg.DGCMsgClip,
		Seed:       *seed + 100 + uint64(*id),
		MaxRetries: *retries, RetryBackoff: *backoff,
		Wire: *wire, Fault: faults.Config(), Metrics: metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client %d: rounds=%d uploads=%d sent=%.1fKB reconnects=%d\n",
		*id, res.Rounds, res.Uploads, float64(res.BytesSent)/1e3, res.Reconnects)
}
