// Command flsim runs a single configurable federated-learning simulation
// and reports the learning curve, communication cost, and selection
// behaviour — the general-purpose entry point for exploring the library
// without writing Go.
//
// Examples:
//
//	flsim -method adafl -dist noniid -clients 10 -rounds 60
//	flsim -method fedavg -rate 0.5 -clients 20 -dist iid
//	flsim -method fedasync -async -horizon 60 -dist noniid
//	flsim -method adafl -async -horizon 60 -csv run.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/scenario"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

// applyCodec fixes every client's uplink codec to the named one, each
// client with its own instance (and, for the stochastic codecs, its own
// RNG stream derived from the experiment seed).
func applyCodec(fed *fl.Federation, name string, cfg core.Config, seed uint64) {
	for i, c := range fed.Clients {
		rng := stats.NewRNG(seed + 0x9e3779b97f4a7c15*uint64(i+1))
		switch name {
		case "dgc":
			c.Codec = &compress.DGC{Momentum: cfg.DGCMomentum, ClipNorm: cfg.DGCClip, MsgClipFactor: cfg.DGCMsgClip}
		case "dadaquant":
			c.Codec = compress.NewDAdaQuant(15, 63, 8, rng)
		case "qsgd":
			c.Codec = compress.NewQSGD(15, rng)
		case "terngrad":
			c.Codec = compress.NewTernGrad(rng)
		case "topk":
			c.Codec = &compress.TopK{}
		case "identity":
			c.Codec = compress.Identity{}
		default:
			log.Fatalf("flsim: unknown codec %q", name)
		}
	}
}

func main() {
	method := flag.String("method", "adafl", "fedavg|fedadam|fedprox|scaffold|adafl (sync) / fedasync|fedbuff|fedat|adafl (-async)")
	async := flag.Bool("async", false, "use the asynchronous protocol")
	dist := flag.String("dist", "noniid", "iid|noniid (2-shard)")
	clients := flag.Int("clients", 10, "federation size")
	rounds := flag.Int("rounds", 60, "synchronous rounds")
	horizon := flag.Float64("horizon", 40, "asynchronous simulated-time budget (s)")
	rate := flag.Float64("rate", 0.5, "baseline participation rate")
	samples := flag.Int("samples", 1500, "synthetic dataset size")
	imgSize := flag.Int("imgsize", 16, "image edge length")
	seed := flag.Uint64("seed", 11, "experiment seed")
	csvPath := flag.String("csv", "", "write the run history as CSV to this path")
	tracePath := flag.String("trace", "", "bandwidth trace CSV (time,multiplier per line) applied to every odd-indexed client")
	scenarioPath := flag.String("scenario", "", "declarative scenario file (energy model, churn, device classes); drives device profiles, availability and bandwidth for the whole run (sync methods only)")
	scenarioLog := flag.String("scenario-log", "", "append the deterministic per-round scenario schedule (JSONL) to this file; empty writes it nowhere")
	codecName := flag.String("codec", "", "fix every client's uplink codec: dgc, dadaquant, qsgd, terngrad, topk or identity (empty keeps the method default; adafl defaults to dgc)")
	negotiate := flag.Bool("negotiate", false, "adafl sync only: negotiate each selected client's codec+ratio per round from observed uplink bytes and the scenario's bandwidth (overrides -codec per round)")
	linkName := flag.String("link", "wifi", "base link preset: ethernet, wifi, lte or constrained")
	flag.Parse()

	var fleet *scenario.Fleet
	if *scenarioPath != "" {
		if *async {
			log.Fatal("flsim: -scenario drives the synchronous round loop; drop -async")
		}
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flsim: %v", err)
		}
		var err2 error
		fleet, err2 = scenario.NewFleet(sc, *clients)
		if err2 != nil {
			log.Fatalf("flsim: %v", err2)
		}
	}

	iid := *dist == "iid"
	ds := dataset.SynthMNIST(*samples, *imgSize, *seed)
	train, test := ds.Split(0.8, *seed+1)
	var parts []*dataset.Dataset
	if iid {
		parts = dataset.PartitionIID(train, *clients, *seed+2)
	} else {
		parts = dataset.PartitionShards(train, *clients, 2, *seed+2)
	}
	size := *imgSize
	modelSeed := *seed + 4
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}
	baseLink := netsim.WiFiLink
	switch *linkName {
	case "ethernet":
		baseLink = netsim.EthernetLink
	case "wifi":
	case "lte":
		baseLink = netsim.LTELink
	case "constrained":
		baseLink = netsim.ConstrainedLink
	default:
		log.Fatalf("flsim: unknown -link %q (ethernet, wifi, lte, constrained)", *linkName)
	}
	net := netsim.UniformNetwork(*clients, baseLink, *seed+3)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := netsim.ParseTraceCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i < *clients; i += 2 {
			l := net.Link(i)
			l.Trace = tr
			net.SetLink(i, l)
		}
	}
	trainCfg := fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	fed := fl.NewFederation(parts, test, net, newModel, trainCfg, *seed+5)
	if fleet != nil {
		// The scenario owns device profiles, link speeds and traces.
		fleet.ConfigureFederation(fed)
		fleet.SetRoundWork(newModel().FLOPsPerSample(), trainCfg.LocalSteps*trainCfg.BatchSize)
	} else {
		for _, c := range fed.Clients {
			c.Device = c.Device.Scaled(0.002) // paper-cadence pacing, see DESIGN.md
		}
	}

	adaCfg := core.DefaultConfig()
	adaCfg.ScaleRatiosForModel(newModel().NumParams())

	var hist *fl.History
	var upBytes int64
	var updates int

	if !*async {
		var agg fl.Aggregator = fl.FedAvg{}
		var planner fl.RoundPlanner = fl.NewFixedRatePlanner(*rate, 1, *seed+8)
		var negotiator *core.Negotiator
		switch *method {
		case "fedavg":
		case "fedadam":
			agg = fl.NewFedAdam(0.02)
		case "fedprox":
			for _, c := range fed.Clients {
				c.Cfg.ProxMu = 0.01
			}
		case "scaffold":
			for _, c := range fed.Clients {
				c.Cfg.Scaffold = true
				c.Cfg.Momentum = 0
			}
			agg = fl.NewScaffold(1, *clients)
		case "adafl":
			adaCfg.AttachDGC(fed)
			sp := core.NewSyncPlanner(adaCfg)
			if *negotiate {
				neg, err := core.NewNegotiator(core.DefaultNegotiation(), adaCfg.Compression)
				if err != nil {
					log.Fatalf("flsim: %v", err)
				}
				sp.Negotiator = neg
				sp.NegotiationSeed = *seed + 9
				negotiator = neg
				if fleet != nil {
					// Feed the negotiator the shared trace multiplier only:
					// a class's static bandwidth asymmetry is already priced
					// into selection, so deepening on it would over-compress
					// slow-class clients every round instead of reacting to
					// transient collapses.
					sp.BandwidthMult = func(client, round int) float64 {
						up, _ := fleet.LinkBandwidth(-1, round, 1, 1)
						return up
					}
				}
			}
			planner = sp
		default:
			log.Fatalf("unknown sync method %q", *method)
		}
		if *codecName != "" {
			applyCodec(fed, *codecName, adaCfg, *seed)
		}
		if fleet != nil {
			if sp, ok := planner.(*core.SyncPlanner); ok {
				sp.Eligible = fleet.Available
				sp.ScoreMult = fleet.ScoreMult
			}
			wrapped := &scenario.Planner{Fleet: fleet, Inner: planner}
			if *scenarioLog != "" {
				lf, err := os.Create(*scenarioLog)
				if err != nil {
					log.Fatal(err)
				}
				defer lf.Close()
				wrapped.Log = lf
			}
			planner = wrapped
		}
		e := fl.NewSyncEngine(fed, agg, planner, *seed+6)
		e.EvalEvery = 5
		if negotiator != nil {
			// Feed the negotiator the accepted uploads' wire bytes so its
			// byte-pressure term has real observations.
			e.OnUpload = negotiator.RecordUpload
		}
		e.RunRounds(*rounds)
		hist, upBytes, updates = &e.Hist, e.TotalUplinkBytes(), e.TotalUpdates()
	} else {
		switch *method {
		case "fedasync":
			e := fl.NewAsyncEngine(fed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
			e.EvalInterval = 5
			e.Run(*horizon)
			hist, upBytes, updates = &e.Hist, e.TotalUplinkBytes(), e.TotalUpdates()
		case "fedbuff":
			e := fl.NewAsyncEngine(fed, fl.NewFedBuff(3, 1), fl.AlwaysUpload{})
			e.EvalInterval = 5
			e.Run(*horizon)
			hist, upBytes, updates = &e.Hist, e.TotalUplinkBytes(), e.TotalUpdates()
		case "fedat":
			e := fl.NewFedATEngine(fed, 3, 0.5)
			e.EvalInterval = 5
			e.Run(*horizon)
			hist, upBytes = &e.Hist, e.TotalUplinkBytes()
			updates = hist.TotalUpdates()
		case "adafl":
			adaCfg.AttachDGC(fed)
			gate := core.NewAsyncGate(adaCfg)
			e := fl.NewAsyncEngine(fed,
				core.AsyncApply{Alpha: adaCfg.AsyncAlpha, Anchor: adaCfg.AsyncAnchor, Decay: adaCfg.AsyncDecay}, gate)
			e.EvalInterval = 5
			e.Run(*horizon)
			hist, upBytes, updates = &e.Hist, e.TotalUplinkBytes(), e.TotalUpdates()
		default:
			log.Fatalf("unknown async method %q", *method)
		}
	}

	// Render the learning curve.
	xlabel := "round"
	if *async {
		xlabel = "time (s)"
	}
	fig := trace.NewFigure(fmt.Sprintf("%s (%s, %d clients)", *method, *dist, *clients), xlabel, "accuracy")
	s := fig.AddSeries(*method)
	for _, r := range hist.Rows {
		if r.TestAcc == r.TestAcc {
			x := float64(r.Round)
			if *async {
				x = r.Time
			}
			s.Add(x, r.TestAcc)
		}
	}
	fig.RenderASCII(os.Stdout, 64, 12)
	fmt.Printf("\nfinal acc %.1f%%  best %.1f%%  uplink %.1f KB  updates %d\n",
		100*hist.FinalAcc(), 100*hist.BestAcc(), float64(upBytes)/1e3, updates)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := hist.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("history written to %s\n", *csvPath)
	}
}
