// Command flbench regenerates the paper's tables and figures.
//
// Usage:
//
//	flbench -scale small fig1 fig3 table1 table2 overhead scale ablation
//	flbench -scale tiny all
//	flbench -scale small -csv out/ fig3
//
// Each experiment id maps to one table or figure of the paper (see
// DESIGN.md's per-experiment index). Figures are rendered as ASCII curves
// on stdout and, with -csv, written as CSV series for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"adafl/internal/experiments"
	"adafl/internal/trace"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: tiny|small|full")
	csvDir := flag.String("csv", "", "directory to write figure CSVs into (optional)")
	svgDir := flag.String("svg", "", "directory to write figure SVGs into (optional)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	preset := experiments.PresetFor(scale)

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"fig1", "fig3", "table1", "table2", "overhead", "scale",
			"ablation", "codecs", "dynamic", "protocols"}
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale=%s) ===\n", id, scale)
		var figs []*trace.Figure
		switch id {
		case "fig1":
			res := experiments.RunFig1(preset, os.Stdout)
			figs = res.Panels
		case "fig3":
			res := experiments.RunFig3(preset, os.Stdout)
			figs = res.Panels
		case "table1":
			experiments.RunTable1(preset, os.Stdout)
		case "table2":
			experiments.RunTable2(preset, os.Stdout)
		case "overhead":
			experiments.RunOverhead(preset, os.Stdout)
		case "scale":
			experiments.RunScale(preset, os.Stdout)
		case "ablation":
			experiments.RunAblations(preset, os.Stdout)
		case "codecs":
			experiments.RunCodecs(preset, os.Stdout)
		case "dynamic":
			experiments.RunDynamic(preset, os.Stdout)
		case "protocols":
			res := experiments.RunProtocols(preset, os.Stdout)
			figs = []*trace.Figure{res.Figure}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		if *csvDir != "" && len(figs) > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for i, fig := range figs {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%02d.csv", id, i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := fig.WriteCSV(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
				f.Close()
			}
			fmt.Printf("wrote %d CSV series to %s\n", len(figs), *csvDir)
		}
		if *svgDir != "" && len(figs) > 0 {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for i, fig := range figs {
				path := filepath.Join(*svgDir, fmt.Sprintf("%s_%02d.svg", id, i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := fig.WriteSVG(f, 640, 400); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
				f.Close()
			}
			fmt.Printf("wrote %d SVG figures to %s\n", len(figs), *svgDir)
		}
		fmt.Printf("=== %s done in %v ===\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
