//go:build !linux

package main

// raiseNoFile is the non-Linux stub: no rlimit bump, unknown limit.
func raiseNoFile() uint64 { return 0 }
