//go:build linux

package main

import "syscall"

// raiseNoFile lifts the open-file soft limit to the hard limit and
// returns the resulting limit (0 when it cannot be read). A socket fleet
// needs two descriptors per simulated client — both ends live in this
// process — so the default soft limit of 1024 would cap the fleet at
// ~500 clients.
func raiseNoFile() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
			// Keep the old soft limit; the caller warns if it is too low.
			syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
		}
	}
	return rl.Cur
}
