// Command flfleet is the fleet-scale load harness for the streaming
// aggregation tree (internal/shard). It simulates thousands of clients
// producing sparse updates every round — no sockets, no training — and
// measures pure aggregation throughput and memory for the two server
// strategies:
//
//	-mode stream    fold each update into its shard partial on arrival
//	                (O(shards × dim) aggregation state, constant in the
//	                fleet size)
//	-mode buffered  buffer the whole round, then screen + fold — the
//	                pre-shard server path (O(clients × nnz) live buffer)
//
// With -fleet-addr the harness leaves the in-process modes behind and
// drives the same synthetic fleet over real sockets (internal/rpc
// RunFleet): every client dials, registers and streams its updates
// through the negotiated-free binary wire codec (or gob, for the
// baseline), and the server side runs the per-connection reader → pooled
// payload → bounded decode/fold worker pipeline. Unix sockets scale past
// the ~28k ephemeral-port ceiling of tcp loopback; the open-file soft
// limit is raised to the hard limit at startup (a 10k-client run needs
// two fds per client). Where one process's file table cannot hold both
// socket ends, -fleet-role splits the run: a "server" process waits for
// "clients" processes (each driving [offset, offset+clients)) to dial
// in, halving the per-process descriptor load. BENCH_6.json collects
// these records.
//
// With -edge-bootstrap the harness instead drives the two-tier edge
// federation (internal/edge): each client dials the root's bootstrap
// listener, follows the MsgReroute welcome to its assigned regional edge,
// and answers that edge's round go-aheads with deterministic synthetic
// updates until the session shuts down. If the edge dies mid-session the
// client falls back to the bootstrap path with full-jitter backoff and is
// rerouted to a surviving sibling.
//
// Peak RSS (VmHWM) is monotonic per process, so run one mode per
// invocation when comparing memory; BENCH_5.json collects one JSON
// object (-json) per configuration.
//
// Examples:
//
//	flfleet -clients 10000 -shards 8 -rounds 5 -dim 20000 -nnz 1000 -json
//	flfleet -clients 10000 -rounds 5 -dim 20000 -nnz 1000 \
//	        -fleet-addr unix:/tmp/flfleet.sock -wire binary -json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adafl/internal/compress"
	"adafl/internal/edge"
	"adafl/internal/rpc"
	"adafl/internal/scenario"
	"adafl/internal/shard"
	"adafl/internal/tensor"
)

// result is the JSON record one invocation emits; BENCH_5.json is a
// collection of these.
type result struct {
	Mode    string `json:"mode"`
	Clients int    `json:"clients"`
	Shards  int    `json:"shards"`
	Rounds  int    `json:"rounds"`
	Dim     int    `json:"dim"`
	Nnz     int    `json:"nnz"`

	WallSeconds    float64 `json:"wall_seconds"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	MBFoldedPerSec float64 `json:"mb_folded_per_sec"`
	PeakHeapInuse  uint64  `json:"peak_heap_inuse_bytes"`
	VmHWMKB        int     `json:"vm_hwm_kb"`
	GlobalChecksum float64 `json:"global_checksum"`
}

func main() {
	clients := flag.Int("clients", 1000, "simulated fleet size")
	shards := flag.Int("shards", 8, "aggregation shards (stream mode)")
	rounds := flag.Int("rounds", 5, "aggregation rounds to drive")
	dim := flag.Int("dim", 20000, "model dimension")
	nnz := flag.Int("nnz", 1000, "non-zeros per client update")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	mode := flag.String("mode", "stream", "aggregation strategy: stream|buffered")
	seed := flag.Uint64("seed", 1, "update-generation seed")
	asJSON := flag.Bool("json", false, "emit the result as one JSON object on stdout")
	fleetAddr := flag.String("fleet-addr", "", "drive the fleet over real sockets at this endpoint (unix:/path or tcp:host:port); empty keeps the in-process -mode harness")
	wire := flag.String("wire", "binary", "socket-mode codec: binary (zero-copy) or gob (baseline)")
	workers := flag.Int("workers", 0, "socket-mode decode/fold workers (0 = GOMAXPROCS)")
	fleetRole := flag.String("fleet-role", "both", "socket-mode process role: both (server + clients in one process), server (wait for external clients), clients (dial a -fleet-role server elsewhere)")
	fleetOffset := flag.Int("fleet-offset", 0, "first client id this clients-role process drives (its range is [offset, offset+clients))")
	scenarioPath := flag.String("scenario", "", "declarative scenario file: its precomputed availability schedule masks which clients produce an update each round (energy depletion, churn, outages)")
	edgeBootstrap := flag.String("edge-bootstrap", "", "drive the fleet against a two-tier federation: dial this root bootstrap address, follow the reroute to the assigned edge, and answer its round go-aheads (clients [fleet-offset, fleet-offset+clients))")
	asyncAddr := flag.String("async-addr", "", "drive the fleet against a buffered-asynchronous flserver -async session at this tcp address: each client registers, then cycles pull→push with deterministic synthetic deltas (no training) until the session's version budget shuts it down")
	sessionName := flag.String("session", "", "async mode: named session to join on a multi-session server (empty joins the default session)")
	flag.Parse()

	if *asyncAddr != "" {
		runAsyncFleet(*asyncAddr, *wire, *sessionName, *clients, *nnz, *fleetOffset, *seed)
		return
	}

	if *edgeBootstrap != "" {
		// Two-tier mode: the fleet clients dial the root's bootstrap
		// listener, get rerouted to their assigned edges, and serve rounds
		// until the session shuts down. Redials after an edge death reuse
		// the same bootstrap path.
		start := time.Now()
		err := edge.RunClients(edge.ClientsConfig{
			Bootstrap: *edgeBootstrap,
			Lo:        *fleetOffset, Hi: *fleetOffset + *clients,
			Dim: *dim, Nnz: *nnz, Seed: *seed, Wire: *wire,
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("flfleet: edge fleet: %v", err)
		}
		fmt.Printf("flfleet edge clients [%d,%d): done in %.2fs\n",
			*fleetOffset, *fleetOffset+*clients, time.Since(start).Seconds())
		return
	}

	// A scenario turns into a precomputed participation mask: the schedule
	// is a pure function of (config, seed, round), so the harness needs no
	// live fleet state — masked-out clients simply skip their update.
	var mask [][]bool
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flfleet: %v", err)
		}
		fleet, err := scenario.NewFleet(sc, *clients)
		if err != nil {
			log.Fatalf("flfleet: %v", err)
		}
		// 12 bytes per non-zero is the sparse wire cost; train time comes
		// from the scenario's device classes (dim FLOPs ≈ one sample).
		fleet.SetRoundWork(float64(*dim), 1)
		mask, err = fleet.Schedule(*rounds, int64(12**nnz))
		if err != nil {
			log.Fatalf("flfleet: scenario schedule: %v", err)
		}
	}

	if *fleetAddr != "" {
		runSocketFleet(*fleetAddr, *wire, *fleetRole, *workers, *clients, *rounds, *dim, *nnz, *queue, *fleetOffset, *seed, *asJSON, mask)
		return
	}
	if *mode != "stream" && *mode != "buffered" {
		log.Fatalf("flfleet: unknown -mode %q (want stream or buffered)", *mode)
	}
	if *clients < 1 || *rounds < 1 || *dim < 1 || *nnz < 1 || *nnz > *dim {
		log.Fatalf("flfleet: need clients, rounds, dim >= 1 and 1 <= nnz <= dim")
	}

	res := result{
		Mode: *mode, Clients: *clients, Shards: *shards,
		Rounds: *rounds, Dim: *dim, Nnz: *nnz,
	}
	global := make([]float64, *dim)
	var peakHeap uint64
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > peakHeap {
			peakHeap = ms.HeapInuse
		}
	}

	var produced int64
	start := time.Now()
	switch *mode {
	case "stream":
		tree := shard.NewTree(shard.Config{
			Shards: *shards, Dim: *dim, QueueDepth: *queue,
		})
		defer tree.Close()
		for r := 0; r < *rounds; r++ {
			produced += produce(*clients, *seed, r, *dim, *nnz, mask, func(id int, u *compress.Sparse) {
				tree.Ingest(r, shard.Update{Client: id, Weight: 1.0 / float64(*clients), Delta: u})
			})
			sampleHeap()
			part, _ := tree.Finish()
			apply(global, part)
		}
	case "buffered":
		for r := 0; r < *rounds; r++ {
			buf := make([]shard.Item, *clients)
			produced += produce(*clients, *seed, r, *dim, *nnz, mask, func(id int, u *compress.Sparse) {
				buf[id] = shard.Item{Client: id, Tag: id, Upd: u}
			})
			sampleHeap() // the whole round is live here — the buffered peak
			items := buf
			if mask != nil {
				// Masked-out slots are zero Items; compact them away.
				items = items[:0]
				for _, it := range buf {
					if it.Upd != nil {
						items = append(items, it)
					}
				}
			}
			kept, _ := shard.Screen(r, *dim, 0, items, nil)
			part := shard.NewPartial(*dim)
			for _, it := range kept {
				part.Fold(shard.Update{
					Client: it.Client, Weight: 1.0 / float64(*clients), Delta: it.Upd,
				}, false)
			}
			apply(global, part)
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	sampleHeap()

	updates := float64(produced)
	// Wire-payload bytes per sparse update: int32 index + float64 value
	// per non-zero.
	bytesPerUpdate := float64(12 * *nnz)
	res.RoundsPerSec = float64(*rounds) / res.WallSeconds
	res.UpdatesPerSec = updates / res.WallSeconds
	res.MBFoldedPerSec = updates * bytesPerUpdate / res.WallSeconds / 1e6
	res.PeakHeapInuse = peakHeap
	res.VmHWMKB = readVmHWM()
	for _, v := range global {
		res.GlobalChecksum += v
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("flfleet %s: %d clients x %d rounds (dim=%d nnz=%d shards=%d)\n",
		res.Mode, res.Clients, res.Rounds, res.Dim, res.Nnz, res.Shards)
	fmt.Printf("  %.2f rounds/s  %.0f updates/s  %.1f MB folded/s\n",
		res.RoundsPerSec, res.UpdatesPerSec, res.MBFoldedPerSec)
	fmt.Printf("  peak heap in use %.1f MB  VmHWM %d KB  checksum %.6g\n",
		float64(res.PeakHeapInuse)/1e6, res.VmHWMKB, res.GlobalChecksum)
}

// runSocketFleet is the -fleet-addr path: the same synthetic fleet, but
// every update crosses a real socket through the selected wire codec.
// The role splits the fleet across processes when one file table cannot
// hold both socket ends: "server" waits for -fleet-role clients
// processes to dial in; "both" (the default) keeps everything local.
func runSocketFleet(endpoint, wire, role string, workers, clients, rounds, dim, nnz, queue, offset int, seed uint64, asJSON bool, mask [][]bool) {
	network, addr, ok := strings.Cut(endpoint, ":")
	if !ok || (network != "unix" && network != "tcp") || addr == "" {
		log.Fatalf("flfleet: -fleet-addr %q: want unix:/path or tcp:host:port", endpoint)
	}
	if mask != nil && role != "both" {
		// A split fleet's schedule must cover the global client-id space,
		// but each process only knows its own -clients count.
		log.Fatal("flfleet: -scenario supports -fleet-role both only")
	}
	// Descriptor budget by role: "both" holds both ends of every
	// connection, the split roles one end each.
	need := uint64(clients) + 64
	if role == "both" {
		need = uint64(clients)*2 + 64
	}
	if limit := raiseNoFile(); limit > 0 && need > limit {
		log.Printf("flfleet: warning: role %s with %d clients needs ~%d fds, open-file limit is %d",
			role, clients, need, limit)
	}
	cfg := rpc.FleetConfig{
		Network: network, Addr: addr, Wire: wire,
		Clients: clients, Rounds: rounds, Dim: dim, Nnz: nnz,
		// log.Printf writes to stderr, so -json keeps a clean stdout.
		Workers: workers, Queue: queue, Seed: seed, Mask: mask, Logf: log.Printf,
	}
	switch role {
	case "clients":
		if err := rpc.RunFleetClients(cfg, offset, offset+clients); err != nil {
			log.Fatalf("flfleet: fleet clients: %v", err)
		}
		return
	case "server":
		cfg.ExternalClients = true
	case "both":
	default:
		log.Fatalf("flfleet: unknown -fleet-role %q (want both, server or clients)", role)
	}
	if network == "unix" {
		os.Remove(addr) // a previous run's leftover socket file blocks Listen
	}
	res, err := rpc.RunFleet(cfg)
	if err != nil {
		log.Fatalf("flfleet: socket fleet: %v", err)
	}
	out := struct {
		rpc.FleetResult
		VmHWMKB int `json:"vm_hwm_kb"`
	}{*res, readVmHWM()}
	if asJSON {
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("flfleet sockets (%s, %s): %d clients x %d rounds (dim=%d nnz=%d workers=%d)\n",
		out.Network, out.Wire, out.Clients, out.Rounds, out.Dim, out.Nnz, out.Workers)
	fmt.Printf("  %.0f updates/s  %.1f bytes/update  %.2f allocs/update\n",
		out.UpdatesPerSec, out.BytesPerUpdate, out.AllocsPerUpdate)
	fmt.Printf("  up %.1f MB  down %.1f MB  VmHWM %d KB  checksum %.6g\n",
		float64(out.BytesUp)/1e6, float64(out.BytesDown)/1e6, out.VmHWMKB, out.Checksum)
}

// produce generates one round of synthetic client updates across
// GOMAXPROCS producer goroutines and hands each to sink, returning how
// many it produced. Every update is a fresh allocation, as it would be
// arriving off the wire; generation is deterministic in (seed, round,
// client) — rpc.FleetUpdate, the same scheme the socket fleet uses, so
// checksums are comparable across the in-process and socket harnesses.
// Clients the scenario mask rules out of the round produce nothing.
func produce(clients int, seed uint64, round, dim, nnz int, mask [][]bool, sink func(id int, u *compress.Sparse)) int64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > clients {
		workers = clients
	}
	var count int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := clients * w / workers
		hi := clients * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var n int64
			for id := lo; id < hi; id++ {
				if mask != nil && !mask[round][id] {
					continue
				}
				u := &compress.Sparse{}
				rpc.FleetUpdate(u, seed, round, id, dim, nnz)
				sink(id, u)
				n++
			}
			atomic.AddInt64(&count, n)
		}(lo, hi)
	}
	wg.Wait()
	return count
}

// apply folds the round partial into the running global, mirroring the
// server's FedAvg renormalisation.
func apply(global []float64, p *shard.Partial) {
	if p == nil || p.WeightSum == 0 {
		return
	}
	tensor.Axpy(1/p.WeightSum, p.Sum, global)
}

// readVmHWM reports the process's peak resident set (KB) from
// /proc/self/status; 0 when unavailable (non-Linux).
func readVmHWM() int {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// runAsyncFleet drives clients [offset, offset+n) against one async
// session: each registers with a hello naming the session, then cycles
// MsgAsyncPull → synthetic MsgAsyncPush until the server's version
// budget ends the session with a shutdown notice. The deltas are the
// deterministic FleetUpdate stream sized to the pulled model, so the
// harness measures pure async fold throughput with no local training.
func runAsyncFleet(addr, wire, session string, n, nnz, offset int, seed uint64) {
	start := time.Now()
	var pushes, rejected int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := offset + i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := rpc.Dial("tcp", addr, wire, 10*time.Second)
			if err != nil {
				log.Printf("flfleet async client %d: dial: %v", id, err)
				return
			}
			defer conn.Close()
			if err := conn.Send(&rpc.Envelope{Type: rpc.MsgHello, ClientID: id, NumSamples: 1, Session: session}); err != nil {
				log.Printf("flfleet async client %d: hello: %v", id, err)
				return
			}
			e, err := conn.Recv()
			if err != nil || e.Type != rpc.MsgWelcome {
				if err == nil && e.Type == rpc.MsgShutdown {
					atomic.AddInt64(&rejected, 1)
					return
				}
				log.Printf("flfleet async client %d: welcome: %v (%v)", id, e, err)
				return
			}
			upd := &compress.Sparse{}
			for {
				if err := conn.Send(&rpc.Envelope{Type: rpc.MsgAsyncPull, ClientID: id}); err != nil {
					return
				}
				e, err := conn.Recv()
				if err != nil || e.Type == rpc.MsgShutdown {
					return // session budget reached (or torn down under us)
				}
				if e.Type != rpc.MsgModel {
					log.Printf("flfleet async client %d: unexpected %v", id, e.Type)
					return
				}
				version, dim := e.Round, len(e.Params)
				k := nnz
				if k > dim {
					k = dim
				}
				rpc.FleetUpdate(upd, seed, version, id, dim, k)
				if err := conn.Send(&rpc.Envelope{Type: rpc.MsgAsyncPush, ClientID: id, Round: version, Update: upd}); err != nil {
					return
				}
				atomic.AddInt64(&pushes, 1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	fmt.Printf("flfleet async [%d,%d): %d pushes in %.2fs (%.0f pushes/s, %d rejected at admission)\n",
		offset, offset+n, pushes, wall, float64(pushes)/wall, rejected)
}
