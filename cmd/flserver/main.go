// Command flserver runs the AdaFL federation server over TCP.
//
// It synthesises the held-out test set locally (clients generate their own
// shards from the shared seed), waits for -clients registrations, runs
// -rounds of utility-guided selection + adaptive compression, and prints
// per-round accuracy.
//
// Example (four terminals):
//
//	flserver -addr :7070 -clients 3 -rounds 30
//	flclient -addr localhost:7070 -id 0 -clients 3
//	flclient -addr localhost:7070 -id 1 -clients 3
//	flclient -addr localhost:7070 -id 2 -clients 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/scenario"
	"adafl/internal/stats"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	clients := flag.Int("clients", 3, "number of clients to wait for")
	rounds := flag.Int("rounds", 30, "training rounds")
	k := flag.Int("k", 0, "max selected clients per round (default clients/2)")
	tau := flag.Float64("tau", 0.5, "utility threshold")
	warmup := flag.Int("warmup", 5, "warm-up rounds of full participation")
	seed := flag.Uint64("seed", 1, "shared experiment seed")
	imgSize := flag.Int("imgsize", 16, "synthetic image size")
	samples := flag.Int("samples", 2000, "total synthetic samples")
	straggler := flag.Duration("straggler-timeout", 30*time.Second, "per-phase deadline before a laggard is evicted")
	minClients := flag.Int("min-clients", 1, "roster floor: end the session cleanly below this many live clients")
	ckptDir := flag.String("checkpoint-dir", "", "directory for the atomic per-round session snapshot (empty disables checkpointing)")
	resume := flag.Bool("resume", false, "restore the snapshot in -checkpoint-dir and continue from the round after the crash (fresh start if none exists)")
	maxNorm := flag.Float64("max-update-norm", 10, "quarantine updates whose L2 norm exceeds this multiple of the round median (0 disables the gate)")
	shards := flag.Int("shards", 0, "stream arriving updates through this many aggregation shards (constant server memory; 0 = buffered single-shot aggregation)")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the debug HTTP server (/metrics, /healthz, /debug/pprof); empty disables it")
	eventLog := flag.String("event-log", "", "append one JSON line per round event (selection, update, evict, quarantine, aggregate, round, checkpoint) to this file; empty disables it")
	wire := flag.String("wire", "binary", "wire codec policy: binary accepts both codecs (clients negotiate at connect time), gob declines binary preambles so every session speaks gob")
	scenarioPath := flag.String("scenario", "", "declarative scenario file (energy model, churn, device classes): gates selection on availability, scales utility scores by battery level, and checkpoints scenario state for -resume")
	scenarioLog := flag.String("scenario-log", "", "append the deterministic per-round scenario schedule (JSONL) to this file; byte-identical across runs at the same seed, unlike -event-log")
	faults := rpc.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *k <= 0 {
		*k = (*clients + 1) / 2
	}

	// The held-out test split. Clients derive their shards from the same
	// seed, so data never crosses the network — exactly as in FL.
	ds := dataset.SynthMNIST(*samples, *imgSize, *seed)
	_, test := ds.Split(0.8, *seed+1)

	size := *imgSize
	modelSeed := *seed + 3
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}

	cfg := core.DefaultConfig()
	cfg.K = *k
	cfg.Tau = *tau
	cfg.Compression.WarmupRounds = *warmup
	cfg.ScaleRatiosForModel(newModel().NumParams())

	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatalf("flserver: metrics server: %v", err)
		}
		defer dbg.Close()
		log.Printf("flserver: metrics at http://%s/metrics", dbg.Addr())
	}
	var events *obs.EventLog
	if *eventLog != "" {
		var err error
		events, err = obs.OpenEventLog(*eventLog)
		if err != nil {
			log.Fatalf("flserver: event log: %v", err)
		}
		defer func() {
			if err := events.Close(); err != nil {
				log.Printf("flserver: event log close: %v", err)
			}
		}()
	}

	scfg := rpc.ServerConfig{
		Addr: *addr, NumClients: *clients, Rounds: *rounds,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 1,
		StragglerTimeout: *straggler, MinClients: *minClients,
		CheckpointDir: *ckptDir, Resume: *resume, MaxUpdateNorm: *maxNorm,
		Shards: *shards, Wire: *wire,
		Fault: faults.Config(), Metrics: metrics, Events: events,
	}
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		fleet, err := scenario.NewFleet(sc, *clients)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		// Energy accounting assumes flclient's default -steps/-batch; the
		// transmit drain uses the real per-update wire bytes regardless.
		fleet.SetRoundWork(newModel().FLOPsPerSample(), 4*16)
		scfg.Scenario = fleet
		if *scenarioLog != "" {
			lf, err := os.OpenFile(*scenarioLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("flserver: scenario log: %v", err)
			}
			defer lf.Close()
			scfg.ScenarioLog = lf
		}
	} else if *scenarioLog != "" {
		log.Fatal("flserver: -scenario-log needs -scenario")
	}
	srv, err := rpc.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("flserver: listening on %s, waiting for %d clients", srv.Addr(), *clients)
	res, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	resumed := ""
	if res.ResumedFrom >= 0 {
		resumed = fmt.Sprintf("  (resumed at round %d)", res.ResumedFrom+1)
	}
	fmt.Printf("final accuracy: %.3f  uplink: %.1f KB  rounds: %d  evictions: %d  quarantined: %d%s%s\n",
		res.FinalAcc, float64(res.BytesReceived)/1e3, len(res.Rounds), res.Evictions, len(res.Quarantines),
		map[bool]string{true: "  (ended early: roster below min-clients)"}[res.EndedEarly], resumed)
}
