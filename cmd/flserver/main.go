// Command flserver runs the AdaFL federation server over TCP.
//
// It synthesises the held-out test set locally (clients generate their own
// shards from the shared seed), waits for -clients registrations, runs
// -rounds of utility-guided selection + adaptive compression, and prints
// per-round accuracy.
//
// Example (four terminals):
//
//	flserver -addr :7070 -clients 3 -rounds 30
//	flclient -addr localhost:7070 -id 0 -clients 3
//	flclient -addr localhost:7070 -id 1 -clients 3
//	flclient -addr localhost:7070 -id 2 -clients 3
//
// With -root or -edge the binary instead runs one tier of the two-tier
// edge federation (internal/edge): a root that merges per-edge partials
// in ascending edge ID and reroutes clients off dead edges, and regional
// edge aggregators that front fleet clients and stream one partial
// upstream per round. A two-edge session (four terminals):
//
//	flserver -root -edges 2 -clients 64 -rounds 10 -dim 20000
//	flserver -edge -edge-id 0 -edge-region eu -root-addr localhost:7071
//	flserver -edge -edge-id 1 -edge-region us -root-addr localhost:7071
//	flfleet  -edge-bootstrap localhost:7070 -clients 64 -dim 20000 -nnz 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/edge"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/scenario"
	"adafl/internal/stats"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	clients := flag.Int("clients", 3, "number of clients to wait for")
	rounds := flag.Int("rounds", 30, "training rounds")
	k := flag.Int("k", 0, "max selected clients per round (default clients/2)")
	tau := flag.Float64("tau", 0.5, "utility threshold")
	warmup := flag.Int("warmup", 5, "warm-up rounds of full participation")
	seed := flag.Uint64("seed", 1, "shared experiment seed")
	imgSize := flag.Int("imgsize", 16, "synthetic image size")
	samples := flag.Int("samples", 2000, "total synthetic samples")
	straggler := flag.Duration("straggler-timeout", 30*time.Second, "per-phase deadline before a laggard is evicted")
	minClients := flag.Int("min-clients", 1, "roster floor: end the session cleanly below this many live clients")
	ckptDir := flag.String("checkpoint-dir", "", "directory for the atomic per-round session snapshot (empty disables checkpointing)")
	resume := flag.Bool("resume", false, "restore the snapshot in -checkpoint-dir and continue from the round after the crash (fresh start if none exists)")
	maxNorm := flag.Float64("max-update-norm", 10, "quarantine updates whose L2 norm exceeds this multiple of the round median (0 disables the gate)")
	shards := flag.Int("shards", 0, "stream arriving updates through this many aggregation shards (constant server memory; 0 = buffered single-shot aggregation)")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the debug HTTP server (/metrics, /healthz, /debug/pprof); empty disables it")
	eventLog := flag.String("event-log", "", "append one JSON line per round event (selection, update, evict, quarantine, aggregate, round, checkpoint) to this file; empty disables it")
	wire := flag.String("wire", "binary", "wire codec policy: binary accepts both codecs (clients negotiate at connect time), gob declines binary preambles so every session speaks gob")
	scenarioPath := flag.String("scenario", "", "declarative scenario file (energy model, churn, device classes): gates selection on availability, scales utility scores by battery level, and checkpoints scenario state for -resume")
	scenarioLog := flag.String("scenario-log", "", "append the deterministic per-round scenario schedule (JSONL) to this file; byte-identical across runs at the same seed, unlike -event-log")
	negotiate := flag.Bool("negotiate", false, "negotiate each selected client's uplink codec+ratio per round from its observed link state (EWMA bytes, scenario bandwidth); assignments travel in the Select broadcast and join the session checkpoint")
	assignLog := flag.String("assign-log", "", "append the deterministic per-round codec assignments (JSONL, sorted by client id) to this file; byte-identical across replays, like -scenario-log (needs -negotiate)")
	negDefaults := core.DefaultNegotiation()
	negSwitch := flag.Float64("neg-switch-ratio", negDefaults.SwitchRatio, "effective ratio at which negotiation switches a client from DGC sparsification to DAdaQuant quantization")
	negMinLv := flag.Int("neg-min-levels", negDefaults.MinLevels, "minimum DAdaQuant quantization level count")
	negMaxLv := flag.Int("neg-max-levels", negDefaults.MaxLevels, "maximum DAdaQuant quantization level count")
	negEvery := flag.Int("neg-double-every", negDefaults.LevelDoubleEvery, "rounds between doublings of the scheduled DAdaQuant level count")

	// Two-tier federation modes (internal/edge). -root runs the top of the
	// tree, -edge one regional aggregator; without either the binary runs
	// the flat single-server session above.
	rootMode := flag.Bool("root", false, "run the two-tier federation root: merge per-edge partials (ascending edge ID), reroute clients off dead edges via the cost graph")
	edgeMode := flag.Bool("edge", false, "run one regional edge aggregator: fold client updates, screen, stream one partial per round to -root-addr")
	dim := flag.Int("dim", 20000, "model dimension for the -root/-edge federation modes")
	edges := flag.Int("edges", 2, "root mode: edge roster size the session waits for")
	rootListen := flag.String("root-listen", ":7071", "root mode: edge-facing listen address")
	bootstrapListen := flag.String("bootstrap-listen", ":7070", "root mode: client bootstrap listen address (clients dial here and are rerouted to their edge)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", edge.DefaultHeartbeatTimeout, "root mode: silence window after which a registered edge is declared dead and its clients rerouted")
	edgeID := flag.Int("edge-id", 0, "edge mode: unique edge identity (the root merges partials in ascending edge ID)")
	edgeRegion := flag.String("edge-region", "", "edge mode: scenario region for reroute affinity and outage exclusion")
	edgeListen := flag.String("edge-listen", "", "edge mode: client-facing listen address (empty binds an ephemeral port; the root learns it from the edge hello)")
	rootAddr := flag.String("root-addr", "", "edge mode: the root's edge-facing address to dial")
	heartbeatInterval := flag.Duration("heartbeat-interval", edge.DefaultHeartbeatInterval, "edge mode: ping cadence to the root")
	rootRetries := flag.Int("root-retries", 10, "edge mode: consecutive failed root redials before giving up (full-jitter backoff; the budget resets on progress)")

	faults := rpc.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *rootMode && *edgeMode {
		log.Fatal("flserver: -root and -edge are mutually exclusive")
	}
	if *rootMode {
		runRoot(rootFlags{
			listen: *rootListen, bootstrap: *bootstrapListen,
			edges: *edges, clients: *clients, rounds: *rounds, dim: *dim,
			heartbeatTimeout: *heartbeatTimeout, wire: *wire,
			ckptDir: *ckptDir, resume: *resume,
			metricsAddr: *metricsAddr, eventLog: *eventLog,
		})
		return
	}
	if *edgeMode {
		ef := edgeFlags{
			id: *edgeID, region: *edgeRegion, listen: *edgeListen,
			rootAddr: *rootAddr, dim: *dim, wire: *wire,
			maxNorm: *maxNorm, heartbeatInterval: *heartbeatInterval,
			retries: *rootRetries, seed: *seed,
			metricsAddr: *metricsAddr, eventLog: *eventLog,
		}
		if *negotiate {
			ef.negotiation = negotiationFlags(*negMinLv, *negMaxLv, *negEvery, *negSwitch)
		}
		runEdge(ef)
		return
	}

	if *k <= 0 {
		*k = (*clients + 1) / 2
	}

	// The held-out test split. Clients derive their shards from the same
	// seed, so data never crosses the network — exactly as in FL.
	ds := dataset.SynthMNIST(*samples, *imgSize, *seed)
	_, test := ds.Split(0.8, *seed+1)

	size := *imgSize
	modelSeed := *seed + 3
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}

	cfg := core.DefaultConfig()
	cfg.K = *k
	cfg.Tau = *tau
	cfg.Compression.WarmupRounds = *warmup
	cfg.ScaleRatiosForModel(newModel().NumParams())

	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatalf("flserver: metrics server: %v", err)
		}
		defer dbg.Close()
		log.Printf("flserver: metrics at http://%s/metrics", dbg.Addr())
	}
	var events *obs.EventLog
	if *eventLog != "" {
		var err error
		events, err = obs.OpenEventLog(*eventLog)
		if err != nil {
			log.Fatalf("flserver: event log: %v", err)
		}
		defer func() {
			if err := events.Close(); err != nil {
				log.Printf("flserver: event log close: %v", err)
			}
		}()
	}

	scfg := rpc.ServerConfig{
		Addr: *addr, NumClients: *clients, Rounds: *rounds,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 1,
		StragglerTimeout: *straggler, MinClients: *minClients,
		CheckpointDir: *ckptDir, Resume: *resume, MaxUpdateNorm: *maxNorm,
		Shards: *shards, Wire: *wire,
		Fault: faults.Config(), Metrics: metrics, Events: events,
	}
	if *negotiate {
		scfg.Negotiation = negotiationFlags(*negMinLv, *negMaxLv, *negEvery, *negSwitch)
		if *assignLog != "" {
			af, err := os.OpenFile(*assignLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("flserver: assign log: %v", err)
			}
			defer af.Close()
			scfg.AssignLog = af
		}
	} else if *assignLog != "" {
		log.Fatal("flserver: -assign-log needs -negotiate")
	}
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		fleet, err := scenario.NewFleet(sc, *clients)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		// Energy accounting assumes flclient's default -steps/-batch; the
		// transmit drain uses the real per-update wire bytes regardless.
		fleet.SetRoundWork(newModel().FLOPsPerSample(), 4*16)
		scfg.Scenario = fleet
		if *scenarioLog != "" {
			lf, err := os.OpenFile(*scenarioLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("flserver: scenario log: %v", err)
			}
			defer lf.Close()
			scfg.ScenarioLog = lf
		}
	} else if *scenarioLog != "" {
		log.Fatal("flserver: -scenario-log needs -scenario")
	}
	srv, err := rpc.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("flserver: listening on %s, waiting for %d clients", srv.Addr(), *clients)
	res, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	resumed := ""
	if res.ResumedFrom >= 0 {
		resumed = fmt.Sprintf("  (resumed at round %d)", res.ResumedFrom+1)
	}
	fmt.Printf("final accuracy: %.3f  uplink: %.1f KB  rounds: %d  evictions: %d  quarantined: %d%s%s\n",
		res.FinalAcc, float64(res.BytesReceived)/1e3, len(res.Rounds), res.Evictions, len(res.Quarantines),
		map[bool]string{true: "  (ended early: roster below min-clients)"}[res.EndedEarly], resumed)
}

// negotiationFlags folds the -neg-* knobs over the negotiation defaults.
func negotiationFlags(minLv, maxLv, every int, switchRatio float64) core.NegotiationConfig {
	nc := core.DefaultNegotiation()
	nc.Enabled = true
	nc.MinLevels, nc.MaxLevels = minLv, maxLv
	nc.LevelDoubleEvery = every
	nc.SwitchRatio = switchRatio
	return nc
}

// rootFlags and edgeFlags carry the parsed federation-mode flags into
// their runners; the flat-session path above never constructs them.
type rootFlags struct {
	listen, bootstrap      string
	edges, clients, rounds int
	dim                    int
	heartbeatTimeout       time.Duration
	wire, ckptDir          string
	resume                 bool
	metricsAddr, eventLog  string
}

type edgeFlags struct {
	id                    int
	region, listen        string
	rootAddr, wire        string
	dim                   int
	maxNorm               float64
	heartbeatInterval     time.Duration
	retries               int
	seed                  uint64
	metricsAddr, eventLog string
	negotiation           core.NegotiationConfig
}

// openObs builds the optional metrics registry and event log shared by the
// federation modes; the returned cleanup is safe to defer unconditionally.
func openObs(metricsAddr, eventLog, who string) (*obs.Registry, *obs.EventLog, func()) {
	var metrics *obs.Registry
	var dbg *obs.DebugServer
	if metricsAddr != "" {
		metrics = obs.NewRegistry()
		var err error
		dbg, err = obs.NewDebugServer(metricsAddr, metrics)
		if err != nil {
			log.Fatalf("%s: metrics server: %v", who, err)
		}
		log.Printf("%s: metrics at http://%s/metrics", who, dbg.Addr())
	}
	var events *obs.EventLog
	if eventLog != "" {
		var err error
		events, err = obs.OpenEventLog(eventLog)
		if err != nil {
			log.Fatalf("%s: event log: %v", who, err)
		}
	}
	return metrics, events, func() {
		if events != nil {
			if err := events.Close(); err != nil {
				log.Printf("%s: event log close: %v", who, err)
			}
		}
		if dbg != nil {
			dbg.Close()
		}
	}
}

// runRoot is the -root mode: the top of the two-tier tree.
func runRoot(f rootFlags) {
	metrics, events, cleanup := openObs(f.metricsAddr, f.eventLog, "flserver root")
	defer cleanup()
	r, err := edge.NewRoot(edge.RootConfig{
		EdgeAddr: f.listen, ClientAddr: f.bootstrap,
		NumEdges: f.edges, Clients: f.clients, Rounds: f.rounds, Dim: f.dim,
		Wire: f.wire, HeartbeatTimeout: f.heartbeatTimeout,
		CheckpointDir: f.ckptDir, Resume: f.resume,
		Metrics: metrics, Events: events, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("flserver root: %v", err)
	}
	log.Printf("flserver root: edges at %s, client bootstrap at %s, waiting for %d edges / %d clients",
		r.EdgeAddr(), r.BootstrapAddr(), f.edges, f.clients)
	res, err := r.Run()
	if err != nil {
		log.Fatalf("flserver root: %v", err)
	}
	resumed := ""
	if res.Resumed > 0 {
		resumed = fmt.Sprintf("  (resumed %d rounds)", res.Resumed)
	}
	var checksum float64
	for _, v := range res.Global {
		checksum += v
	}
	fmt.Printf("root: %d rounds  epoch %d  reroutes %d  orphans %d  checksum %.6g%s\n",
		len(res.History), res.Epoch, res.Reroutes, res.Orphans, checksum, resumed)
}

// runEdge is the -edge mode: one regional aggregator.
func runEdge(f edgeFlags) {
	if f.rootAddr == "" {
		log.Fatal("flserver edge: -root-addr is required")
	}
	metrics, events, cleanup := openObs(f.metricsAddr, f.eventLog, "flserver edge")
	defer cleanup()
	e, err := edge.NewEdge(edge.EdgeConfig{
		ID: f.id, ClientAddr: f.listen, RootAddr: f.rootAddr,
		Region: f.region, Dim: f.dim, Wire: f.wire,
		MaxUpdateNorm: f.maxNorm, HeartbeatInterval: f.heartbeatInterval,
		MaxRetries: f.retries, Seed: f.seed, Negotiation: f.negotiation,
		Metrics: metrics, Events: events, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("flserver edge: %v", err)
	}
	log.Printf("flserver edge %d (%s): clients at %s, root at %s",
		f.id, f.region, e.ClientAddr(), f.rootAddr)
	res, err := e.Run()
	if err != nil {
		log.Fatalf("flserver edge: %v", err)
	}
	fmt.Printf("edge %d: %d rounds  folded %d  quarantined %d  peak clients %d\n",
		f.id, res.Rounds, res.Folded, res.Quarantined, res.PeakClients)
}
