// Command flserver runs the AdaFL federation server over TCP.
//
// It synthesises the held-out test set locally (clients generate their own
// shards from the shared seed), waits for -clients registrations, runs
// -rounds of utility-guided selection + adaptive compression, and prints
// per-round accuracy.
//
// Example (four terminals):
//
//	flserver -addr :7070 -clients 3 -rounds 30
//	flclient -addr localhost:7070 -id 0 -clients 3
//	flclient -addr localhost:7070 -id 1 -clients 3
//	flclient -addr localhost:7070 -id 2 -clients 3
//
// With -root or -edge the binary instead runs one tier of the two-tier
// edge federation (internal/edge): a root that merges per-edge partials
// in ascending edge ID and reroutes clients off dead edges, and regional
// edge aggregators that front fleet clients and stream one partial
// upstream per round. A two-edge session (four terminals):
//
//	flserver -root -edges 2 -clients 64 -rounds 10 -dim 20000
//	flserver -edge -edge-id 0 -edge-region eu -root-addr localhost:7071
//	flserver -edge -edge-id 1 -edge-region us -root-addr localhost:7071
//	flfleet  -edge-bootstrap localhost:7070 -clients 64 -dim 20000 -nnz 1000
//
// With -async the binary runs the buffered-asynchronous (FedBuff) engine
// instead of lockstep rounds: clients cycle pull→train→push freely, the
// server folds arrivals into a staleness-weighted buffer and applies it
// every -buffer-k pushes. -sessions multiplexes several independent
// async sessions over the one listener; clients pick theirs with
// flclient -session. A two-session example:
//
//	flserver -async -sessions edge-eu,edge-us -versions 50 -clients 8
//	flclient -async -session edge-eu -id 0 -clients 8
//	flclient -async -session edge-us -id 1 -clients 8
//
// The doctor subcommand audits a checkpoint directory (and optionally
// its JSONL event log) offline, exiting non-zero on any inconsistency:
//
//	flserver doctor -checkpoint-dir ./ckpt -event-log ./events.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/edge"
	"adafl/internal/nn"
	"adafl/internal/obs"
	"adafl/internal/rpc"
	"adafl/internal/scenario"
	"adafl/internal/session"
	"adafl/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "doctor" {
		runDoctor(os.Args[2:])
		return
	}
	addr := flag.String("addr", ":7070", "listen address")
	clients := flag.Int("clients", 3, "number of clients to wait for")
	rounds := flag.Int("rounds", 30, "training rounds")
	k := flag.Int("k", 0, "max selected clients per round (default clients/2)")
	tau := flag.Float64("tau", 0.5, "utility threshold")
	warmup := flag.Int("warmup", 5, "warm-up rounds of full participation")
	seed := flag.Uint64("seed", 1, "shared experiment seed")
	imgSize := flag.Int("imgsize", 16, "synthetic image size")
	samples := flag.Int("samples", 2000, "total synthetic samples")
	straggler := flag.Duration("straggler-timeout", 30*time.Second, "per-phase deadline before a laggard is evicted")
	minClients := flag.Int("min-clients", 1, "roster floor: end the session cleanly below this many live clients")
	ckptDir := flag.String("checkpoint-dir", "", "directory for the atomic per-round session snapshot (empty disables checkpointing)")
	resume := flag.Bool("resume", false, "restore the snapshot in -checkpoint-dir and continue from the round after the crash (fresh start if none exists)")
	maxNorm := flag.Float64("max-update-norm", 10, "quarantine updates whose L2 norm exceeds this multiple of the round median (0 disables the gate)")
	shards := flag.Int("shards", 0, "stream arriving updates through this many aggregation shards (constant server memory; 0 = buffered single-shot aggregation)")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the debug HTTP server (/metrics, /healthz, /debug/pprof); empty disables it")
	eventLog := flag.String("event-log", "", "append one JSON line per round event (selection, update, evict, quarantine, aggregate, round, checkpoint) to this file; empty disables it")
	wire := flag.String("wire", "binary", "wire codec policy: binary accepts both codecs (clients negotiate at connect time), gob declines binary preambles so every session speaks gob")
	scenarioPath := flag.String("scenario", "", "declarative scenario file (energy model, churn, device classes): gates selection on availability, scales utility scores by battery level, and checkpoints scenario state for -resume")
	scenarioLog := flag.String("scenario-log", "", "append the deterministic per-round scenario schedule (JSONL) to this file; byte-identical across runs at the same seed, unlike -event-log")
	negotiate := flag.Bool("negotiate", false, "negotiate each selected client's uplink codec+ratio per round from its observed link state (EWMA bytes, scenario bandwidth); assignments travel in the Select broadcast and join the session checkpoint")
	assignLog := flag.String("assign-log", "", "append the deterministic per-round codec assignments (JSONL, sorted by client id) to this file; byte-identical across replays, like -scenario-log (needs -negotiate)")
	negDefaults := core.DefaultNegotiation()
	negSwitch := flag.Float64("neg-switch-ratio", negDefaults.SwitchRatio, "effective ratio at which negotiation switches a client from DGC sparsification to DAdaQuant quantization")
	negMinLv := flag.Int("neg-min-levels", negDefaults.MinLevels, "minimum DAdaQuant quantization level count")
	negMaxLv := flag.Int("neg-max-levels", negDefaults.MaxLevels, "maximum DAdaQuant quantization level count")
	negEvery := flag.Int("neg-double-every", negDefaults.LevelDoubleEvery, "rounds between doublings of the scheduled DAdaQuant level count")
	deltaCkpt := flag.Bool("delta-ckpt", false, "write -checkpoint-dir as a chunked content-hash delta chain instead of one full snapshot per round (async sessions always use the delta format)")

	// Buffered-asynchronous (FedBuff) mode and the multi-session control
	// plane (internal/session).
	asyncMode := flag.Bool("async", false, "run the buffered-asynchronous engine: no round barrier, arrivals fold into a staleness-weighted buffer applied every -buffer-k pushes")
	sessionsFlag := flag.String("sessions", "", "comma-separated session names multiplexed over one listener, each an independent async engine (implies -async); empty runs the single \"default\" session")
	bufferK := flag.Int("buffer-k", 0, "async: buffer size — accepted pushes per model-version apply (default max(clients/2, 1))")
	maxStaleness := flag.Int("max-staleness", 0, "async: reject pushes whose base model is more than this many versions behind the global (0 accepts any staleness; slow clients are never evicted)")
	versions := flag.Int("versions", 0, "async: model-version budget per session (default -rounds)")
	eta := flag.Float64("eta", 1, "async: server learning rate applied to the weighted buffer mean")

	// Two-tier federation modes (internal/edge). -root runs the top of the
	// tree, -edge one regional aggregator; without either the binary runs
	// the flat single-server session above.
	rootMode := flag.Bool("root", false, "run the two-tier federation root: merge per-edge partials (ascending edge ID), reroute clients off dead edges via the cost graph")
	edgeMode := flag.Bool("edge", false, "run one regional edge aggregator: fold client updates, screen, stream one partial per round to -root-addr")
	dim := flag.Int("dim", 20000, "model dimension for the -root/-edge federation modes")
	edges := flag.Int("edges", 2, "root mode: edge roster size the session waits for")
	rootListen := flag.String("root-listen", ":7071", "root mode: edge-facing listen address")
	bootstrapListen := flag.String("bootstrap-listen", ":7070", "root mode: client bootstrap listen address (clients dial here and are rerouted to their edge)")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", edge.DefaultHeartbeatTimeout, "root mode: silence window after which a registered edge is declared dead and its clients rerouted")
	edgeID := flag.Int("edge-id", 0, "edge mode: unique edge identity (the root merges partials in ascending edge ID)")
	edgeRegion := flag.String("edge-region", "", "edge mode: scenario region for reroute affinity and outage exclusion")
	edgeListen := flag.String("edge-listen", "", "edge mode: client-facing listen address (empty binds an ephemeral port; the root learns it from the edge hello)")
	rootAddr := flag.String("root-addr", "", "edge mode: the root's edge-facing address to dial")
	heartbeatInterval := flag.Duration("heartbeat-interval", edge.DefaultHeartbeatInterval, "edge mode: ping cadence to the root")
	rootRetries := flag.Int("root-retries", 10, "edge mode: consecutive failed root redials before giving up (full-jitter backoff; the budget resets on progress)")

	faults := rpc.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *rootMode && *edgeMode {
		log.Fatal("flserver: -root and -edge are mutually exclusive")
	}
	if (*asyncMode || *sessionsFlag != "") && (*rootMode || *edgeMode) {
		log.Fatal("flserver: -async is mutually exclusive with -root/-edge")
	}
	if *asyncMode || *sessionsFlag != "" {
		if *versions <= 0 {
			*versions = *rounds
		}
		if *bufferK <= 0 {
			*bufferK = (*clients + 1) / 2
		}
		runAsync(asyncFlags{
			addr: *addr, sessions: *sessionsFlag, wire: *wire,
			clients: *clients, versions: *versions, k: *bufferK,
			maxStaleness: *maxStaleness, eta: *eta, maxNorm: *maxNorm,
			shards: *shards, seed: *seed, imgSize: *imgSize, samples: *samples,
			ckptDir: *ckptDir, resume: *resume,
			metricsAddr: *metricsAddr, eventLog: *eventLog,
			fault: faults.Config(),
		})
		return
	}
	if *rootMode {
		runRoot(rootFlags{
			listen: *rootListen, bootstrap: *bootstrapListen,
			edges: *edges, clients: *clients, rounds: *rounds, dim: *dim,
			heartbeatTimeout: *heartbeatTimeout, wire: *wire,
			ckptDir: *ckptDir, resume: *resume,
			metricsAddr: *metricsAddr, eventLog: *eventLog,
		})
		return
	}
	if *edgeMode {
		ef := edgeFlags{
			id: *edgeID, region: *edgeRegion, listen: *edgeListen,
			rootAddr: *rootAddr, dim: *dim, wire: *wire,
			maxNorm: *maxNorm, heartbeatInterval: *heartbeatInterval,
			retries: *rootRetries, seed: *seed,
			metricsAddr: *metricsAddr, eventLog: *eventLog,
		}
		if *negotiate {
			ef.negotiation = negotiationFlags(*negMinLv, *negMaxLv, *negEvery, *negSwitch)
		}
		runEdge(ef)
		return
	}

	if *k <= 0 {
		*k = (*clients + 1) / 2
	}

	// The held-out test split. Clients derive their shards from the same
	// seed, so data never crosses the network — exactly as in FL.
	ds := dataset.SynthMNIST(*samples, *imgSize, *seed)
	_, test := ds.Split(0.8, *seed+1)

	size := *imgSize
	modelSeed := *seed + 3
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}

	cfg := core.DefaultConfig()
	cfg.K = *k
	cfg.Tau = *tau
	cfg.Compression.WarmupRounds = *warmup
	cfg.ScaleRatiosForModel(newModel().NumParams())

	var metrics *obs.Registry
	if *metricsAddr != "" {
		metrics = obs.NewRegistry()
		dbg, err := obs.NewDebugServer(*metricsAddr, metrics)
		if err != nil {
			log.Fatalf("flserver: metrics server: %v", err)
		}
		defer dbg.Close()
		log.Printf("flserver: metrics at http://%s/metrics", dbg.Addr())
	}
	var events *obs.EventLog
	if *eventLog != "" {
		var err error
		events, err = obs.OpenEventLog(*eventLog)
		if err != nil {
			log.Fatalf("flserver: event log: %v", err)
		}
		defer func() {
			if err := events.Close(); err != nil {
				log.Printf("flserver: event log close: %v", err)
			}
		}()
	}

	scfg := rpc.ServerConfig{
		Addr: *addr, NumClients: *clients, Rounds: *rounds,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 1,
		StragglerTimeout: *straggler, MinClients: *minClients,
		CheckpointDir: *ckptDir, Resume: *resume, DeltaCheckpoints: *deltaCkpt,
		MaxUpdateNorm: *maxNorm,
		Shards:        *shards, Wire: *wire,
		Fault: faults.Config(), Metrics: metrics, Events: events,
	}
	if *negotiate {
		scfg.Negotiation = negotiationFlags(*negMinLv, *negMaxLv, *negEvery, *negSwitch)
		if *assignLog != "" {
			af, err := os.OpenFile(*assignLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("flserver: assign log: %v", err)
			}
			defer af.Close()
			scfg.AssignLog = af
		}
	} else if *assignLog != "" {
		log.Fatal("flserver: -assign-log needs -negotiate")
	}
	if *scenarioPath != "" {
		sc, err := scenario.Load(*scenarioPath)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		fleet, err := scenario.NewFleet(sc, *clients)
		if err != nil {
			log.Fatalf("flserver: %v", err)
		}
		// Energy accounting assumes flclient's default -steps/-batch; the
		// transmit drain uses the real per-update wire bytes regardless.
		fleet.SetRoundWork(newModel().FLOPsPerSample(), 4*16)
		scfg.Scenario = fleet
		if *scenarioLog != "" {
			lf, err := os.OpenFile(*scenarioLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("flserver: scenario log: %v", err)
			}
			defer lf.Close()
			scfg.ScenarioLog = lf
		}
	} else if *scenarioLog != "" {
		log.Fatal("flserver: -scenario-log needs -scenario")
	}
	srv, err := rpc.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("flserver: listening on %s, waiting for %d clients", srv.Addr(), *clients)
	res, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	resumed := ""
	if res.ResumedFrom >= 0 {
		resumed = fmt.Sprintf("  (resumed at round %d)", res.ResumedFrom+1)
	}
	fmt.Printf("final accuracy: %.3f  uplink: %.1f KB  rounds: %d  evictions: %d  quarantined: %d%s%s\n",
		res.FinalAcc, float64(res.BytesReceived)/1e3, len(res.Rounds), res.Evictions, len(res.Quarantines),
		map[bool]string{true: "  (ended early: roster below min-clients)"}[res.EndedEarly], resumed)
}

// negotiationFlags folds the -neg-* knobs over the negotiation defaults.
func negotiationFlags(minLv, maxLv, every int, switchRatio float64) core.NegotiationConfig {
	nc := core.DefaultNegotiation()
	nc.Enabled = true
	nc.MinLevels, nc.MaxLevels = minLv, maxLv
	nc.LevelDoubleEvery = every
	nc.SwitchRatio = switchRatio
	return nc
}

// rootFlags and edgeFlags carry the parsed federation-mode flags into
// their runners; the flat-session path above never constructs them.
type rootFlags struct {
	listen, bootstrap      string
	edges, clients, rounds int
	dim                    int
	heartbeatTimeout       time.Duration
	wire, ckptDir          string
	resume                 bool
	metricsAddr, eventLog  string
}

type edgeFlags struct {
	id                    int
	region, listen        string
	rootAddr, wire        string
	dim                   int
	maxNorm               float64
	heartbeatInterval     time.Duration
	retries               int
	seed                  uint64
	metricsAddr, eventLog string
	negotiation           core.NegotiationConfig
}

// openObs builds the optional metrics registry and event log shared by the
// federation modes; the returned cleanup is safe to defer unconditionally.
func openObs(metricsAddr, eventLog, who string) (*obs.Registry, *obs.EventLog, func()) {
	var metrics *obs.Registry
	var dbg *obs.DebugServer
	if metricsAddr != "" {
		metrics = obs.NewRegistry()
		var err error
		dbg, err = obs.NewDebugServer(metricsAddr, metrics)
		if err != nil {
			log.Fatalf("%s: metrics server: %v", who, err)
		}
		log.Printf("%s: metrics at http://%s/metrics", who, dbg.Addr())
	}
	var events *obs.EventLog
	if eventLog != "" {
		var err error
		events, err = obs.OpenEventLog(eventLog)
		if err != nil {
			log.Fatalf("%s: event log: %v", who, err)
		}
	}
	return metrics, events, func() {
		if events != nil {
			if err := events.Close(); err != nil {
				log.Printf("%s: event log close: %v", who, err)
			}
		}
		if dbg != nil {
			dbg.Close()
		}
	}
}

// runRoot is the -root mode: the top of the two-tier tree.
func runRoot(f rootFlags) {
	metrics, events, cleanup := openObs(f.metricsAddr, f.eventLog, "flserver root")
	defer cleanup()
	r, err := edge.NewRoot(edge.RootConfig{
		EdgeAddr: f.listen, ClientAddr: f.bootstrap,
		NumEdges: f.edges, Clients: f.clients, Rounds: f.rounds, Dim: f.dim,
		Wire: f.wire, HeartbeatTimeout: f.heartbeatTimeout,
		CheckpointDir: f.ckptDir, Resume: f.resume,
		Metrics: metrics, Events: events, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("flserver root: %v", err)
	}
	log.Printf("flserver root: edges at %s, client bootstrap at %s, waiting for %d edges / %d clients",
		r.EdgeAddr(), r.BootstrapAddr(), f.edges, f.clients)
	res, err := r.Run()
	if err != nil {
		log.Fatalf("flserver root: %v", err)
	}
	resumed := ""
	if res.Resumed > 0 {
		resumed = fmt.Sprintf("  (resumed %d rounds)", res.Resumed)
	}
	var checksum float64
	for _, v := range res.Global {
		checksum += v
	}
	fmt.Printf("root: %d rounds  epoch %d  reroutes %d  orphans %d  checksum %.6g%s\n",
		len(res.History), res.Epoch, res.Reroutes, res.Orphans, checksum, resumed)
}

// runEdge is the -edge mode: one regional aggregator.
func runEdge(f edgeFlags) {
	if f.rootAddr == "" {
		log.Fatal("flserver edge: -root-addr is required")
	}
	metrics, events, cleanup := openObs(f.metricsAddr, f.eventLog, "flserver edge")
	defer cleanup()
	e, err := edge.NewEdge(edge.EdgeConfig{
		ID: f.id, ClientAddr: f.listen, RootAddr: f.rootAddr,
		Region: f.region, Dim: f.dim, Wire: f.wire,
		MaxUpdateNorm: f.maxNorm, HeartbeatInterval: f.heartbeatInterval,
		MaxRetries: f.retries, Seed: f.seed, Negotiation: f.negotiation,
		Metrics: metrics, Events: events, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("flserver edge: %v", err)
	}
	log.Printf("flserver edge %d (%s): clients at %s, root at %s",
		f.id, f.region, e.ClientAddr(), f.rootAddr)
	res, err := e.Run()
	if err != nil {
		log.Fatalf("flserver edge: %v", err)
	}
	fmt.Printf("edge %d: %d rounds  folded %d  quarantined %d  peak clients %d\n",
		f.id, res.Rounds, res.Folded, res.Quarantined, res.PeakClients)
}

// asyncFlags carries the parsed -async mode flags into runAsync.
type asyncFlags struct {
	addr, sessions, wire  string
	clients, versions, k  int
	maxStaleness          int
	eta, maxNorm          float64
	shards                int
	seed                  uint64
	imgSize, samples      int
	ckptDir               string
	resume                bool
	metricsAddr, eventLog string
	fault                 *rpc.FaultConfig
}

// runAsync is the -async mode: one Manager-owned listener multiplexing
// one or more buffered-asynchronous sessions.
func runAsync(f asyncFlags) {
	names := []string{session.DefaultSession}
	if f.sessions != "" {
		names = nil
		for _, n := range strings.Split(f.sessions, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			log.Fatal("flserver: -sessions named no sessions")
		}
	}
	metrics, _, cleanup := openObs(f.metricsAddr, "", "flserver")
	defer cleanup()

	ds := dataset.SynthMNIST(f.samples, f.imgSize, f.seed)
	_, test := ds.Split(0.8, f.seed+1)
	size, modelSeed := f.imgSize, f.seed+3
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, size, size}, []int{32}, 10, stats.NewRNG(modelSeed))
	}

	m, err := session.NewManager(session.Config{Addr: f.addr, Wire: f.wire, Fault: f.fault, Logf: log.Printf})
	if err != nil {
		log.Fatalf("flserver: %v", err)
	}
	defer m.Close()

	engines := make([]*session.AsyncSession, len(names))
	logs := make([]*obs.EventLog, len(names))
	for i, name := range names {
		cfg := session.AsyncConfig{
			Name: name, NewModel: newModel, Test: test, EvalEvery: 1,
			K: f.k, MaxStaleness: f.maxStaleness, Eta: f.eta,
			Versions: f.versions, MaxClients: f.clients,
			MaxUpdateNorm: f.maxNorm, Shards: f.shards,
			Resume: f.resume, Metrics: metrics, Logf: log.Printf,
		}
		// Each session gets its own chain and event log so the doctor can
		// audit them independently; a single session keeps the bare paths.
		if f.ckptDir != "" {
			cfg.CheckpointDir = f.ckptDir
			if len(names) > 1 {
				cfg.CheckpointDir = filepath.Join(f.ckptDir, name)
			}
		}
		if f.eventLog != "" {
			path := f.eventLog
			if len(names) > 1 {
				path += "." + name
			}
			if dir := filepath.Dir(path); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					log.Fatalf("flserver: event log dir: %v", err)
				}
			}
			ev, err := obs.OpenEventLog(path)
			if err != nil {
				log.Fatalf("flserver: event log: %v", err)
			}
			defer func() {
				if err := ev.Close(); err != nil {
					log.Printf("flserver: event log close: %v", err)
				}
			}()
			logs[i] = ev
			cfg.Events = ev
		}
		a, err := session.NewAsync(cfg)
		if err != nil {
			log.Fatalf("flserver: session %q: %v", name, err)
		}
		if err := m.Register(name, a); err != nil {
			log.Fatalf("flserver: session %q: %v", name, err)
		}
		engines[i] = a
	}
	go m.Serve()
	log.Printf("flserver: async sessions %v on %s (K=%d, budget %d versions each)",
		names, m.Addr(), f.k, f.versions)

	results := make([]*session.AsyncResult, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i := range engines {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = engines[i].Run()
		}()
	}
	wg.Wait()
	failed := false
	for i, name := range names {
		if errs[i] != nil {
			log.Printf("flserver: session %q: %v", name, errs[i])
			failed = true
			continue
		}
		res := results[i]
		resumed := ""
		if res.ResumedFrom >= 0 {
			resumed = fmt.Sprintf("  (resumed at version %d)", res.ResumedFrom)
		}
		fmt.Printf("session %s: versions=%d acc=%.3f pushes=%d stale-rejected=%d quarantined=%d evictions=%d uplink=%.1fKB%s\n",
			name, res.Versions, res.FinalAcc, res.Pushes, res.StaleRejected,
			len(res.Quarantines), res.Evictions, float64(res.BytesReceived)/1e3, resumed)
		fmt.Printf("session %s: staleness histogram %s\n", name, stalenessLine(res.StalenessCounts))
	}
	if failed {
		os.Exit(1)
	}
}

// stalenessLine renders a staleness histogram as "s=0:12 s=1:3 ...".
func stalenessLine(counts map[int]int) string {
	if len(counts) == 0 {
		return "(no pushes)"
	}
	keys := make([]int, 0, len(counts))
	for s := range counts {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, s := range keys {
		parts = append(parts, fmt.Sprintf("s=%d:%d", s, counts[s]))
	}
	return strings.Join(parts, " ")
}

// runDoctor is the doctor subcommand: an offline checkpoint/event-log
// audit that exits non-zero when the artifacts are inconsistent.
func runDoctor(args []string) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	dir := fs.String("checkpoint-dir", "", "checkpoint directory to audit (delta chain or full snapshot)")
	events := fs.String("event-log", "", "JSONL event log to cross-check against the checkpoint (optional)")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "flserver doctor: -checkpoint-dir is required")
		fs.Usage()
		os.Exit(2)
	}
	rep, err := session.Doctor(*dir, *events, os.Stdout)
	if err != nil {
		log.Fatalf("flserver doctor: %v", err)
	}
	if !rep.Healthy() {
		os.Exit(1)
	}
}
