# Developer entry points. Everything is stdlib-only Go; `make check` is the
# gate every change must pass (build + vet + full tests + race detector on
# the concurrency-bearing packages).

GO ?= go

.PHONY: check lint vet build test race chaos fuzz cover fleet bench bench-gemm bench-train bench-wire

check: lint build test race

# Static gate: vet plus gofmt as a *failing* check — gofmt -l prints the
# offending files and the target exits non-zero if any exist.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that spawn goroutines (parallel GEMM, parallel evaluation,
# parallel client rounds, the concurrent RPC round engine and its chaos
# suite, the sharded streaming aggregation tree) plus the crash-safety
# layer and the shared-registry observability layer under the race
# detector.
race:
	$(GO) test -race ./internal/fl/... ./internal/nn/... ./internal/tensor/... ./internal/rpc/... ./internal/checkpoint/... ./internal/obs/... ./internal/shard/... ./internal/compress/... ./internal/scenario/... ./internal/edge/... ./internal/session/...

# The full-session fault-injection suite (stragglers, partitions, drops,
# kill-and-restart resume) plus the two-tier edge-kill/reroute suite under
# the race detector.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/rpc/ ./internal/edge/

# Short fuzzing smoke over the attack surfaces: corrupted/truncated gob
# and binary wire streams and checkpoint snapshots must error, never
# panic, and the sharded streaming aggregator must agree with the
# reference fold under adversarial updates. CI-friendly 10s budgets;
# raise -fuzztime locally for a deeper run.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/rpc/
	$(GO) test -run xxx -fuzz FuzzWireDecode -fuzztime 10s ./internal/rpc/
	$(GO) test -run xxx -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/checkpoint/
	$(GO) test -run xxx -fuzz FuzzDeltaDecode -fuzztime 10s ./internal/checkpoint/
	$(GO) test -run xxx -fuzz FuzzShardMerge -fuzztime 10s ./internal/shard/
	$(GO) test -run xxx -fuzz FuzzScenarioDecode -fuzztime 10s ./internal/scenario/

# Coverage floors on the scenario engine and the models it composes, plus
# the wire codecs, the sharded aggregation tree and the two-tier edge
# federation — the protocol/aggregation core every session rides on.
# Floors sit a few points under current numbers to absorb benign drift.
cover:
	@set -e; \
	check_pkg() { \
		pct=$$($(GO) test -cover ./internal/$$1/ | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "internal/$$1: tests failed or no coverage output"; exit 1; fi; \
		echo "internal/$$1: $$pct% (floor $$2%)"; \
		if ! awk -v p="$$pct" -v f="$$2" 'BEGIN { exit !(p+0 >= f+0) }'; then \
			echo "internal/$$1: coverage $$pct% is below the $$2% floor"; exit 1; \
		fi; \
	}; \
	check_pkg scenario 85; \
	check_pkg device 90; \
	check_pkg netsim 85; \
	check_pkg rpc 84; \
	check_pkg shard 76; \
	check_pkg edge 80; \
	check_pkg compress 85; \
	check_pkg session 80; \
	check_pkg checkpoint 75

# Fleet-scale aggregation smoke: a small streaming-vs-buffered pair from
# the load harness. BENCH_5.json records the full 1k/10k-client runs and
# the sublinear-memory comparison.
fleet:
	$(GO) run ./cmd/flfleet -clients 500 -shards 4 -rounds 3 -dim 5000 -nnz 250
	$(GO) run ./cmd/flfleet -clients 500 -shards 4 -rounds 3 -dim 5000 -nnz 250 -mode buffered

# Hot-path microbenchmarks with allocation stats; see DESIGN.md §GEMM for
# how these map onto BENCH_1.json.
bench-gemm:
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkMatMulNaive|BenchmarkMatMulParallel|BenchmarkMatMulTranspose' -benchtime 2s -benchmem ./internal/tensor/

# BENCH_4.json records the observability-overhead check: BenchmarkTrainRound
# with metrics disabled (nil registry) must match the pre-obs baseline —
# the nil-receiver no-op instruments are allocation-free by construction
# (pinned by TestNilInstrumentsAllocationFree in internal/obs).
bench-train:
	$(GO) test -run xxx -bench 'BenchmarkConv|BenchmarkDense' -benchtime 2s -benchmem ./internal/nn/
	$(GO) test -run xxx -bench 'BenchmarkTrainRound|BenchmarkPaperCNNTrainBatch|BenchmarkDGCEncode431k|BenchmarkTopKSelect431k' -benchtime 2s -benchmem .

# Wire-codec comparison: the zero-copy binary codec vs the gob baseline
# at the micro level (bytes/op, allocs/op for sparse-update and full-model
# frames) plus a bounded socket-fleet pair over unix sockets. BENCH_6.json
# records the full 10k-client runs; this target is the CI-sized smoke.
bench-wire:
	$(GO) test -run xxx -bench 'BenchmarkWire|BenchmarkGob' -benchtime 2s -benchmem ./internal/rpc/
	$(GO) run ./cmd/flfleet -clients 1000 -rounds 3 -dim 20000 -nnz 1000 -fleet-addr unix:/tmp/flfleet-bench.sock -wire binary -json
	$(GO) run ./cmd/flfleet -clients 1000 -rounds 3 -dim 20000 -nnz 1000 -fleet-addr unix:/tmp/flfleet-bench.sock -wire gob -json

bench: bench-gemm bench-train bench-wire
