# Developer entry points. Everything is stdlib-only Go; `make check` is the
# gate every change must pass (build + vet + full tests + race detector on
# the concurrency-bearing packages).

GO ?= go

.PHONY: check vet build test race fuzz bench bench-gemm bench-train

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that spawn goroutines (parallel GEMM, parallel evaluation,
# parallel client rounds, the concurrent RPC round engine and its chaos
# suite) under the race detector.
race:
	$(GO) test -race ./internal/fl/... ./internal/nn/... ./internal/tensor/... ./internal/rpc/...

# Short fuzzing smoke over the wire decoder: corrupted/truncated gob
# streams must error, never panic. CI-friendly 10s budget; raise
# -fuzztime locally for a deeper run.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/rpc/

# Hot-path microbenchmarks with allocation stats; see DESIGN.md §GEMM for
# how these map onto BENCH_1.json.
bench-gemm:
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkMatMulNaive|BenchmarkMatMulParallel|BenchmarkMatMulTranspose' -benchtime 2s -benchmem ./internal/tensor/

bench-train:
	$(GO) test -run xxx -bench 'BenchmarkConv|BenchmarkDense' -benchtime 2s -benchmem ./internal/nn/
	$(GO) test -run xxx -bench 'BenchmarkTrainRound|BenchmarkPaperCNNTrainBatch|BenchmarkDGCEncode431k|BenchmarkTopKSelect431k' -benchtime 2s -benchmem .

bench: bench-gemm bench-train
