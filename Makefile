# Developer entry points. Everything is stdlib-only Go; `make check` is the
# gate every change must pass (build + vet + full tests + race detector on
# the concurrency-bearing packages).

GO ?= go

.PHONY: check vet build test race chaos fuzz bench bench-gemm bench-train

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that spawn goroutines (parallel GEMM, parallel evaluation,
# parallel client rounds, the concurrent RPC round engine and its chaos
# suite) plus the crash-safety layer under the race detector.
race:
	$(GO) test -race ./internal/fl/... ./internal/nn/... ./internal/tensor/... ./internal/rpc/... ./internal/checkpoint/...

# The full-session fault-injection suite (stragglers, partitions, drops,
# kill-and-restart resume) under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/rpc/

# Short fuzzing smoke over the attack surfaces: corrupted/truncated gob
# streams and checkpoint snapshots must error, never panic. CI-friendly
# 10s budgets; raise -fuzztime locally for a deeper run.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/rpc/
	$(GO) test -run xxx -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/checkpoint/

# Hot-path microbenchmarks with allocation stats; see DESIGN.md §GEMM for
# how these map onto BENCH_1.json.
bench-gemm:
	$(GO) test -run xxx -bench 'BenchmarkMatMul|BenchmarkMatMulNaive|BenchmarkMatMulParallel|BenchmarkMatMulTranspose' -benchtime 2s -benchmem ./internal/tensor/

bench-train:
	$(GO) test -run xxx -bench 'BenchmarkConv|BenchmarkDense' -benchtime 2s -benchmem ./internal/nn/
	$(GO) test -run xxx -bench 'BenchmarkTrainRound|BenchmarkPaperCNNTrainBatch|BenchmarkDGCEncode431k|BenchmarkTopKSelect431k' -benchtime 2s -benchmem .

bench: bench-gemm bench-train
