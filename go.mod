module adafl

go 1.22
