// Quickstart: a ten-client federation on synthetic MNIST comparing plain
// FedAvg (participation rate 0.5, dense updates) against AdaFL (adaptive
// node selection + adaptive gradient compression). Runs in a few seconds
// and prints both learning curves plus the communication totals.
package main

import (
	"fmt"
	"os"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

func main() {
	const (
		numClients = 10
		rounds     = 40
		seed       = 7
	)

	// 1. Synthesise the task and split it across clients (non-IID: each
	//    client holds ~2 digit classes, the harsh realistic case).
	ds := dataset.SynthMNIST(1500, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionShards(train, numClients, 2, seed+2)

	// 2. A shared model architecture; every party builds it from the same
	//    seed so initial weights agree.
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+3))
	}

	// 3. The network: identical WiFi-class links for this quickstart.
	buildFed := func() *fl.Federation {
		net := netsim.UniformNetwork(numClients, netsim.WiFiLink, seed+4)
		cfg := fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
		return fl.NewFederation(parts, test, net, newModel, cfg, seed+5)
	}

	fig := trace.NewFigure("FedAvg vs AdaFL (non-IID synthetic MNIST)", "round", "test accuracy")

	// --- Baseline: FedAvg, half the clients per round, dense uploads.
	fedAvg := fl.NewSyncEngine(buildFed(), fl.FedAvg{}, fl.NewFixedRatePlanner(0.5, 1, seed+6), seed+7)
	fedAvg.EvalEvery = 5
	fedAvg.RunRounds(rounds)
	addCurve(fig, "FedAvg", &fedAvg.Hist)

	// --- AdaFL: utility-scored top-k selection + DGC with rank-adaptive
	//     compression ratios.
	adaFed := buildFed()
	cfg := core.DefaultConfig()
	cfg.ScaleRatiosForModel(newModel().NumParams())
	cfg.AttachDGC(adaFed)
	planner := core.NewSyncPlanner(cfg)
	adaFL := fl.NewSyncEngine(adaFed, fl.FedAvg{}, planner, seed+7)
	adaFL.EvalEvery = 5
	adaFL.RunRounds(rounds)
	addCurve(fig, "AdaFL", &adaFL.Hist)

	fig.RenderASCII(os.Stdout, 64, 12)
	fmt.Println()
	fmt.Printf("FedAvg: final acc %.1f%%  uplink %.1f KB  updates %d\n",
		100*fedAvg.Hist.FinalAcc(), float64(fedAvg.TotalUplinkBytes())/1e3, fedAvg.TotalUpdates())
	fmt.Printf("AdaFL : final acc %.1f%%  uplink %.1f KB  updates %d  (ratios %.0fx..%.0fx)\n",
		100*adaFL.Hist.FinalAcc(), float64(adaFL.TotalUplinkBytes())/1e3, adaFL.TotalUpdates(),
		planner.RatioStats.MaxRatio, planner.RatioStats.MinRatio)
	saving := 1 - float64(adaFL.TotalUplinkBytes())/float64(fedAvg.TotalUplinkBytes())
	fmt.Printf("communication saving vs FedAvg: %.0f%%\n", 100*saving)
}

func addCurve(fig *trace.Figure, name string, h *fl.History) {
	s := fig.AddSeries(name)
	for _, r := range h.Rows {
		if r.TestAcc == r.TestAcc {
			s.Add(float64(r.Round), r.TestAcc)
		}
	}
}
