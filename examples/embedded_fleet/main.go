// Embedded fleet: a heterogeneous asynchronous federation modelled on the
// paper's motivating deployment — a mix of Raspberry Pi 3 and Pi 4 class
// devices, some throttled to a third of their speed, on a mix of WiFi,
// LTE and severely constrained links, with hard non-IID data.
//
// The example contrasts FedAsync (every client uploads densely as fast as
// it can) against fully-asynchronous AdaFL (clients score their own
// updates, withhold low-utility ones, and compress adaptively), printing
// the accuracy-vs-time curves, staleness, and per-client upload counts.
package main

import (
	"fmt"
	"os"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/device"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

const (
	numClients = 12
	horizon    = 60.0 // simulated seconds
	seed       = 21
)

func buildFleet() *fl.Federation {
	ds := dataset.SynthMNIST(1800, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionShards(train, numClients, 2, seed+2)

	// Heterogeneous links: a third each of WiFi, LTE and constrained.
	links := make([]netsim.Link, numClients)
	for i := range links {
		switch i % 3 {
		case 0:
			links[i] = netsim.WiFiLink
		case 1:
			links[i] = netsim.LTELink
		default:
			links[i] = netsim.ConstrainedLink
		}
	}
	net := netsim.NewNetwork(links, seed+3)

	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+4))
	}
	cfg := fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	fed := fl.NewFederation(parts, test, net, newModel, cfg, seed+5)

	// Heterogeneous devices: alternate Pi 4 / Pi 3, with every fourth
	// device additionally throttled to a third (thermal / co-tenancy),
	// scaled into the surrogate-model cadence regime (see DESIGN.md).
	for i, c := range fed.Clients {
		base := device.RaspberryPi4
		if i%2 == 1 {
			base = device.RaspberryPi3
		}
		base = base.Scaled(0.002)
		if i%4 == 3 {
			base = base.Scaled(1.0 / 3)
		}
		c.Device = base
	}
	return fed
}

func main() {
	fig := trace.NewFigure("Embedded fleet: FedAsync vs async AdaFL (non-IID)", "time (s)", "test accuracy")

	// --- FedAsync baseline: dense uploads, staleness-decayed mixing.
	baseFed := buildFleet()
	fedAsync := fl.NewAsyncEngine(baseFed, fl.FedAsync{Alpha: 0.5, Decay: 0.5}, fl.AlwaysUpload{})
	fedAsync.EvalInterval = 5
	fedAsync.Run(horizon)
	addCurve(fig, "FedAsync", &fedAsync.Hist)

	// --- AdaFL: utility gating + adaptive DGC compression.
	adaFed := buildFleet()
	cfg := core.DefaultConfig()
	cfg.Compression.MaxRatio = 105 // the paper's asynchronous ladder bound
	cfg.ScaleRatiosForModel(adaFed.NewModel().NumParams())
	cfg.AttachDGC(adaFed)
	gate := core.NewAsyncGate(cfg)
	adaFL := fl.NewAsyncEngine(adaFed, core.AsyncApply{Alpha: cfg.AsyncAlpha, Anchor: cfg.AsyncAnchor, Decay: cfg.AsyncDecay}, gate)
	adaFL.EvalInterval = 5
	adaFL.Run(horizon)
	addCurve(fig, "AdaFL", &adaFL.Hist)

	fig.RenderASCII(os.Stdout, 64, 12)
	fmt.Println()
	fmt.Printf("FedAsync: final acc %.1f%%  uplink %.1f KB  updates %d  mean staleness %.2f\n",
		100*fedAsync.Hist.FinalAcc(), float64(fedAsync.TotalUplinkBytes())/1e3,
		fedAsync.TotalUpdates(), fedAsync.MeanStaleness())
	fmt.Printf("AdaFL   : final acc %.1f%%  uplink %.1f KB  updates %d  mean staleness %.2f  skip rate %.0f%%\n",
		100*adaFL.Hist.FinalAcc(), float64(adaFL.TotalUplinkBytes())/1e3,
		adaFL.TotalUpdates(), adaFL.MeanStaleness(), 100*gate.SkipRate())
	saving := 1 - float64(adaFL.TotalUplinkBytes())/float64(fedAsync.TotalUplinkBytes())
	fmt.Printf("communication saving vs FedAsync: %.0f%%\n\n", 100*saving)

	fmt.Println("per-client uploads (AdaFL) — constrained/slow clients contribute less:")
	for i, n := range adaFL.ClientUpdates {
		link := [3]string{"wifi", "lte ", "slow"}[i%3]
		dev := "pi4"
		if i%2 == 1 {
			dev = "pi3"
		}
		throttled := ""
		if i%4 == 3 {
			throttled = " (throttled 3x)"
		}
		fmt.Printf("  client %2d [%s %s%s]: %d uploads\n", i, dev, link, throttled, n)
	}
}

func addCurve(fig *trace.Figure, name string, h *fl.History) {
	s := fig.AddSeries(name)
	for _, r := range h.Rows {
		if r.TestAcc == r.TestAcc {
			s.Add(r.Time, r.TestAcc)
		}
	}
}
