// Network dynamics: demonstrates the adaptive half of AdaFL that static
// compression schemes lack. Half the clients ride a bandwidth trace that
// collapses periodically (outages) and drifts (random walk); the example
// logs, round by round, the bandwidth multiplier each selected client saw
// and the compression ratio AdaFL assigned it — showing ratios tightening
// when links degrade and relaxing when they recover.
package main

import (
	"fmt"
	"os"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/fl"
	"adafl/internal/netsim"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/trace"
)

const (
	numClients = 8
	rounds     = 40
	seed       = 33
)

// loggingPlanner wraps the AdaFL planner to record each round's decisions.
type loggingPlanner struct {
	inner *core.SyncPlanner
	fed   *fl.Federation
	rows  []string
	// ratioByBw correlates bandwidth multiplier with assigned ratio.
	bwSeries, ratioSeries *trace.Series
}

func (lp *loggingPlanner) Plan(round int, e *fl.SyncEngine) []fl.Participation {
	parts := lp.inner.Plan(round, e)
	line := fmt.Sprintf("round %2d:", round)
	for _, p := range parts {
		up, _ := lp.fed.Net.Bandwidths(p.Client, e.Now())
		mult := up / netsim.WiFiLink.UpBps
		line += fmt.Sprintf("  c%d bw×%.2f→%.0fx", p.Client, mult, p.Ratio)
		lp.bwSeries.Add(mult, 0)
		lp.ratioSeries.Add(float64(round), p.Ratio)
	}
	lp.rows = append(lp.rows, line)
	return parts
}

func main() {
	ds := dataset.SynthMNIST(1500, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionShards(train, numClients, 2, seed+2)

	// Dynamic links: even clients stable WiFi, odd clients ride a trace
	// combining outages (bandwidth collapses 10x every ~8 sim-seconds)
	// with slow drift.
	rng := stats.NewRNG(seed + 9)
	links := make([]netsim.Link, numClients)
	for i := range links {
		links[i] = netsim.WiFiLink
		if i%2 == 1 {
			l := netsim.WiFiLink
			if i%4 == 1 {
				l.Trace = netsim.OutageTrace(8, 3, 0.1, 1e6)
			} else {
				l.Trace = netsim.RandomWalkTrace(rng.Split(), 4, 1e6, 0.05, 1)
			}
			links[i] = l
		}
	}
	net := netsim.NewNetwork(links, seed+3)

	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+4))
	}
	cfg := fl.TrainConfig{LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9}
	fed := fl.NewFederation(parts, test, net, newModel, cfg, seed+5)

	adaCfg := core.DefaultConfig()
	adaCfg.K = 4
	adaCfg.ScaleRatiosForModel(newModel().NumParams())
	adaCfg.AttachDGC(fed)

	ratioFig := trace.NewFigure("Assigned compression ratio over rounds", "round", "ratio")
	lp := &loggingPlanner{
		inner:       core.NewSyncPlanner(adaCfg),
		fed:         fed,
		bwSeries:    &trace.Series{Name: "bw"},
		ratioSeries: ratioFig.AddSeries("ratio"),
	}
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, lp, seed+6)
	e.EvalEvery = 5
	e.RunRounds(rounds)

	fmt.Println("per-round selection decisions (bandwidth multiplier → assigned ratio):")
	for _, row := range lp.rows {
		fmt.Println(row)
	}
	fmt.Println()
	ratioFig.RenderASCII(os.Stdout, 64, 10)
	fmt.Printf("\nfinal accuracy %.1f%%  uplink %.1f KB  updates %d\n",
		100*e.Hist.FinalAcc(), float64(e.TotalUplinkBytes())/1e3, e.TotalUpdates())
	fmt.Printf("ratio spread observed: %.0fx .. %.0fx (mean %.1fx)\n",
		lp.inner.RatioStats.MinRatio, lp.inner.RatioStats.MaxRatio, lp.inner.RatioStats.Mean())
}
