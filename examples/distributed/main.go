// Distributed: the full AdaFL protocol over real TCP sockets inside one
// process — a server goroutine plus four client goroutines, one of them
// throttled to an embedded-class uplink. Demonstrates the rpc package the
// cmd/flserver and cmd/flclient binaries are built on.
package main

import (
	"fmt"
	"log"
	"sync"

	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/nn"
	"adafl/internal/rpc"
	"adafl/internal/stats"
)

const (
	numClients = 4
	rounds     = 25
	seed       = 17
)

func main() {
	// Shared task setup: every party derives its data from the seed, so
	// only model traffic crosses the sockets.
	ds := dataset.SynthMNIST(1200, 16, seed)
	train, test := ds.Split(0.8, seed+1)
	parts := dataset.PartitionShards(train, numClients, 2, seed+2)
	newModel := func() *nn.Model {
		return nn.NewImageMLP([]int{1, 16, 16}, []int{32}, 10, stats.NewRNG(seed+3))
	}

	cfg := core.DefaultConfig()
	cfg.K = 3
	cfg.Compression.WarmupRounds = 3
	cfg.ScaleRatiosForModel(newModel().NumParams())

	srv, err := rpc.NewServer(rpc.ServerConfig{
		Addr: "127.0.0.1:0", NumClients: numClients, Rounds: rounds,
		Cfg: cfg, NewModel: newModel, Test: test, EvalEvery: 3,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server listening on %s\n", srv.Addr())

	var wg sync.WaitGroup
	results := make([]*rpc.ClientResult, numClients)
	for i := 0; i < numClients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ccfg := rpc.ClientConfig{
				Addr: srv.Addr(), ID: i, Data: parts[i], NewModel: newModel,
				LocalSteps: 4, BatchSize: 16, LR: 0.1, Momentum: 0.9,
				Utility: cfg.Utility, UpBps: 2.5e6, DownBps: 5e6,
				DGCClip: cfg.DGCClip, DGCMsgClip: cfg.DGCMsgClip,
				Seed: seed + 100 + uint64(i),
				Logf: func(string, ...interface{}) {},
			}
			if i == numClients-1 {
				// The last client is a genuinely constrained device: its
				// socket writes are token-bucket limited to 256 KB/s.
				ccfg.UpBps = 256e3
				ccfg.ThrottleUplink = true
			}
			res, err := rpc.RunClient(ccfg)
			if err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			results[i] = res
		}()
	}

	srvRes, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nfinal accuracy: %.1f%%  total uplink: %.1f KB over %d rounds\n",
		100*srvRes.FinalAcc, float64(srvRes.BytesReceived)/1e3, len(srvRes.Rounds))
	for i, r := range results {
		if r == nil {
			continue
		}
		tag := ""
		if i == numClients-1 {
			tag = " (throttled 256 KB/s)"
		}
		fmt.Printf("client %d%s: uploaded %d of %d rounds, %.1f KB on the wire\n",
			i, tag, r.Uploads, r.Rounds, float64(r.BytesSent)/1e3)
	}
}
