// Package adafl's root benchmark harness regenerates every table and
// figure of the paper (see DESIGN.md's per-experiment index) plus the
// ablation studies and component microbenchmarks.
//
//	go test -bench=. -benchmem                   # tiny scale (seconds)
//	ADAFL_BENCH_SCALE=small go test -bench=. -benchmem -timeout 60m
//	ADAFL_BENCH_SCALE=full  go test -bench=Table1 -timeout 24h
//
// Experiment benches run one full experiment per iteration (b.N is
// typically 1) and report domain metrics — final accuracy, uplink bytes,
// cost reduction — through b.ReportMetric. The rendered tables/figures of
// the most recent iteration are printed via b.Log at -v.
package adafl

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"adafl/internal/compress"
	"adafl/internal/core"
	"adafl/internal/dataset"
	"adafl/internal/device"
	"adafl/internal/experiments"
	"adafl/internal/fl"
	"adafl/internal/nn"
	"adafl/internal/stats"
	"adafl/internal/tensor"
)

// benchPreset resolves the experiment scale from ADAFL_BENCH_SCALE
// (tiny|small|full; default tiny so the default bench run finishes in
// minutes).
func benchPreset(b *testing.B) experiments.Preset {
	b.Helper()
	name := os.Getenv("ADAFL_BENCH_SCALE")
	if name == "" {
		name = "tiny"
	}
	scale, err := experiments.ParseScale(name)
	if err != nil {
		b.Fatal(err)
	}
	return experiments.PresetFor(scale)
}

// BenchmarkFig1 regenerates Figure 1 (a)–(l): the empirical resilience
// study under dropout, data loss and staleness.
func BenchmarkFig1(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunFig1(p, &sb)
		b.ReportMetric(res.Insight1Gap, "insight1-dropout20-gap")
		b.ReportMetric(res.StaleGap, "insight2-stale-gap")
		b.ReportMetric(res.DropGap, "insight2-drop-gap")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (a)–(d): AdaFL vs baselines,
// synchronous and asynchronous, IID and non-IID.
func BenchmarkFig3(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunFig3(p, &sb)
		b.ReportMetric(res.FinalAcc[1]["AdaFL"], "sync-noniid-adafl-acc")
		b.ReportMetric(res.FinalAcc[1]["FedAvg"], "sync-noniid-fedavg-acc")
		b.ReportMetric(res.FinalAcc[3]["AdaFL"], "async-noniid-adafl-acc")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable1 regenerates Table I: the synchronous comparison.
func BenchmarkTable1(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunTable1(p, &sb)
		ada := res.Row("AdaFL")
		base := res.Row("FedAvg")
		b.ReportMetric(-ada.CostReductionPct, "adafl-cost-reduction-%")
		b.ReportMetric(float64(ada.UpdateFreq), "adafl-update-freq")
		b.ReportMetric(ada.RatioMax, "adafl-max-ratio")
		b.ReportMetric(100*ada.Acc["mnist-noniid"], "adafl-mnist-noniid-%")
		b.ReportMetric(100*base.Acc["mnist-noniid"], "fedavg-mnist-noniid-%")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkTable2 regenerates Table II: the asynchronous comparison.
func BenchmarkTable2(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunTable2(p, &sb)
		ada := res.Row("AdaFL")
		base := res.Row("FedAsync")
		b.ReportMetric(-ada.CostReductionPct, "adafl-cost-reduction-%")
		b.ReportMetric(float64(ada.UpdateFreq), "adafl-update-freq")
		b.ReportMetric(100*ada.Acc["mnist-noniid"], "adafl-mnist-noniid-%")
		b.ReportMetric(100*base.Acc["mnist-noniid"], "fedasync-mnist-noniid-%")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkOverhead regenerates the §V overhead study (Q3): relative CPU
// cycle expansion of utility scoring and compression on an RPi profile.
func BenchmarkOverhead(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunOverhead(p, &sb)
		b.ReportMetric(res.UtilityExpansionPct, "utility-expansion-%")
		b.ReportMetric(res.CompressExpansionPct, "compress-expansion-%")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkScale regenerates the §V scalability sweep (20–100 clients).
func BenchmarkScale(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunScale(p, &sb)
		last := len(res.ClientCounts) - 1
		b.ReportMetric(100*res.AdaAcc[last], fmt.Sprintf("adafl-acc-%dclients-%%", res.ClientCounts[last]))
		b.ReportMetric(1-float64(res.AdaBytes[last])/float64(res.BaseBytes[last]), "byte-saving-frac")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// ablationBench runs one named ablation variant against the reference.
func ablationBench(b *testing.B, variant string) {
	p := benchPreset(b)
	variants := experiments.AblationVariants()
	var chosen []experiments.AblationVariant
	for _, v := range variants {
		if v.Name == "adafl (reference)" || v.Name == variant {
			chosen = append(chosen, v)
		}
	}
	if len(chosen) != 2 {
		b.Fatalf("unknown ablation variant %q", variant)
	}
	for i := 0; i < b.N; i++ {
		for _, v := range chosen {
			v := v
			_, stats := runAblationVariant(p, v)
			tag := "ref"
			if v.Name == variant {
				tag = "variant"
			}
			b.ReportMetric(100*stats.FinalAcc, tag+"-acc-%")
		}
	}
}

// runAblationVariant executes one variant (sync, non-IID MNIST).
func runAblationVariant(p experiments.Preset, v experiments.AblationVariant) (experiments.Curve, experiments.RunStats) {
	return experiments.RunVariant(p, v)
}

// BenchmarkAblationSimilarityMetric ablates cosine vs L2 utility.
func BenchmarkAblationSimilarityMetric(b *testing.B) { ablationBench(b, "similarity=L2") }

// BenchmarkAblationWarmup ablates removing the warm-up phase.
func BenchmarkAblationWarmup(b *testing.B) { ablationBench(b, "warmup=0") }

// BenchmarkAblationFixedCompression ablates adaptive vs fixed ratio.
func BenchmarkAblationFixedCompression(b *testing.B) { ablationBench(b, "fixed-ratio") }

// BenchmarkAblationBandwidthTerm ablates the bandwidth term of the score.
func BenchmarkAblationBandwidthTerm(b *testing.B) { ablationBench(b, "no-bandwidth-term") }

// BenchmarkAblationExploration ablates the fairness reservation.
func BenchmarkAblationExploration(b *testing.B) { ablationBench(b, "no-exploration") }

// BenchmarkCodecs regenerates the codec comparison (model-level
// related-work baselines: top-k, random-k, DGC, QSGD, TernGrad).
func BenchmarkCodecs(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunCodecs(p, &sb)
		b.ReportMetric(100*res.Acc["dgc@8x"], "dgc-acc-%")
		b.ReportMetric(100*res.Acc["topk@8x"], "topk-acc-%")
		b.ReportMetric(100*res.Acc["randomk@8x"], "randomk-acc-%")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkDynamic regenerates the dynamic-network study (the paper's §I
// motivation: static compression vs adaptive under varying bandwidth).
func BenchmarkDynamic(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunDynamic(p, &sb)
		b.ReportMetric(100*res.Acc["adafl"], "adafl-acc-%")
		b.ReportMetric(float64(res.Bytes["adafl"])/float64(res.Bytes["fedavg-dense"]), "byte-frac-vs-dense")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkProtocols regenerates the protocol comparison (sync FedAvg vs
// FedAT tiers vs FedAsync vs async AdaFL at an equal time budget).
func BenchmarkProtocols(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		res := experiments.RunProtocols(p, &sb)
		b.ReportMetric(100*res.AccAtHorizon["AdaFL"], "adafl-acc-%")
		b.ReportMetric(100*res.AccAtHorizon["FedAT"], "fedat-acc-%")
		if i == b.N-1 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkGradSyncMomentumCorrection ablates DGC's momentum correction in
// its native setting — per-step gradient exchange (distributed synchronous
// SGD) — where it is mathematically valid, unlike delta exchange (see
// DESIGN.md's deviations).
func BenchmarkGradSyncMomentumCorrection(b *testing.B) {
	p := benchPreset(b)
	steps := p.Rounds * 3
	for i := 0; i < b.N; i++ {
		run := func(momentum float64) float64 {
			fed := p.Federation(experiments.MNISTTask, true, p.Seeds[0])
			fl.AttachGradDGC(fed, momentum, 10)
			e := fl.NewGradSyncEngine(fed, 0.1, 50)
			e.EvalEvery = steps / 3
			e.RunSteps(steps)
			return e.Hist.FinalAcc()
		}
		b.ReportMetric(100*run(0.9), "corrected-acc-%")
		b.ReportMetric(100*run(0), "plain-acc-%")
	}
}

// BenchmarkDownlinkCompression quantifies the framework extension that
// compresses server→client broadcasts as replica deltas: downlink bytes
// and accuracy relative to dense broadcast.
func BenchmarkDownlinkCompression(b *testing.B) {
	p := benchPreset(b)
	for i := 0; i < b.N; i++ {
		seed := p.Seeds[0]
		dense := p.Federation(experiments.MNISTTask, true, seed)
		eDense := fl.NewSyncEngine(dense, fl.FedAvg{}, fl.NewFixedRatePlanner(1, 1, seed+1), seed+2)
		eDense.EvalEvery = p.EvalEvery
		eDense.RunRounds(p.Rounds)

		comp := p.Federation(experiments.MNISTTask, true, seed)
		eComp := fl.NewSyncEngine(comp, fl.FedAvg{}, fl.NewFixedRatePlanner(1, 1, seed+1), seed+2)
		eComp.Downlink = fl.NewDownlinkCompressor(8, 10)
		eComp.EvalEvery = p.EvalEvery
		eComp.RunRounds(p.Rounds)

		denseDown := eDense.Hist.Rows[len(eDense.Hist.Rows)-1].DownlinkBytes
		compDown := eComp.Hist.Rows[len(eComp.Hist.Rows)-1].DownlinkBytes
		b.ReportMetric(float64(compDown)/float64(denseDown), "downlink-byte-frac")
		b.ReportMetric(100*eDense.Hist.FinalAcc(), "dense-acc-%")
		b.ReportMetric(100*eComp.Hist.FinalAcc(), "compressed-acc-%")
	}
}

// ---------------------------------------------------------------------
// Component microbenchmarks at the paper's gradient dimension.

const paperDim = 431080

func randomVec(n int, seed uint64) []float64 {
	r := stats.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

// BenchmarkUtilityScore431k measures one cosine utility score at the
// paper CNN's dimension — the per-round client-side cost of AdaFL's
// selection signal.
func BenchmarkUtilityScore431k(b *testing.B) {
	u := core.DefaultUtility()
	g := randomVec(paperDim, 1)
	ref := randomVec(paperDim, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Score(2.5e6, 5e6, g, ref)
	}
}

// BenchmarkDGCEncode431k measures one DGC encode at 210x compression —
// the per-upload cost of AdaFL's compressor.
func BenchmarkDGCEncode431k(b *testing.B) {
	d := compress.NewDGC(0, 10)
	g := randomVec(paperDim, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encode(g, 210)
	}
}

// BenchmarkTopKSelect431k measures raw top-k selection.
func BenchmarkTopKSelect431k(b *testing.B) {
	g := randomVec(paperDim, 4)
	k := compress.KForRatio(paperDim, 210)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.SelectTopK(g, k)
	}
}

// BenchmarkPaperCNNForward measures one forward pass of the paper's CNN
// on a single 28×28 sample — the unit of simulated client compute.
func BenchmarkPaperCNNForward(b *testing.B) {
	m := nn.NewPaperCNN(stats.NewRNG(5))
	x := tensor.New(1, 1, 28, 28)
	x.RandNorm(stats.NewRNG(6), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

// BenchmarkPaperCNNTrainBatch measures one forward+backward on a batch of
// 8 samples.
func BenchmarkPaperCNNTrainBatch(b *testing.B) {
	m := nn.NewPaperCNN(stats.NewRNG(7))
	x := tensor.New(8, 1, 28, 28)
	x.RandNorm(stats.NewRNG(8), 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		m.TrainBatch(x, labels)
	}
}

// BenchmarkTrainRound measures one full client local round on the paper
// CNN with synthetic MNIST: LocalSteps mini-batch SGD steps, delta
// extraction, and a DGC encode at 210× — the per-client unit of work every
// experiment repeats thousands of times. -benchmem tracks the hot path's
// allocation count, which the tensor scratch pool and per-layer buffer
// caches are meant to hold near zero.
func BenchmarkTrainRound(b *testing.B) {
	ds := dataset.SynthMNIST(256, 28, 1)
	model := nn.NewPaperCNN(stats.NewRNG(2))
	cfg := fl.TrainConfig{LocalSteps: 2, BatchSize: 8, LR: 0.05, Momentum: 0.9}
	c := fl.NewClient(0, ds, model, cfg, device.Profile{}, stats.NewRNG(3))
	c.Codec = compress.NewDGC(0, 10)
	global := model.ParamVector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta, _ := c.TrainRound(global, nil)
		c.EncodeDelta(delta, 210)
	}
}

// BenchmarkSyncRound measures one full synchronous AdaFL round on the
// bench preset's surrogate federation.
func BenchmarkSyncRound(b *testing.B) {
	p := benchPreset(b)
	fed := p.Federation(experiments.MNISTTask, false, 1)
	cfg := p.AdaFLConfig(experiments.MNISTTask, 210)
	cfg.AttachDGC(fed)
	e := fl.NewSyncEngine(fed, fl.FedAvg{}, core.NewSyncPlanner(cfg), 2)
	e.EvalEvery = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound()
	}
}
